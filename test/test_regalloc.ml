(* Tests for the register allocator: interference graph, Chaitin-Briggs
   and linear-scan colouring, spill-code insertion, the Algorithm-1
   shared-memory optimization, and the end-to-end allocator — including
   the central property that allocation preserves kernel semantics. *)

module B = Ptx.Builder
module I = Ptx.Instr
module T = Ptx.Types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let analyse k =
  let flow = Cfg.Flow.of_kernel k in
  let live = Cfg.Liveness.compute flow in
  (flow, live, Regalloc.Interference.build flow live)

(* ---------- interference ---------- *)

let chain_kernel () =
  (* three values all live simultaneously *)
  let b = B.create "chain" in
  let out = B.param b "out" T.U64 in
  let x = B.mov b T.U32 (B.imm 1) in
  let y = B.mov b T.U32 (B.imm 2) in
  let z = B.mov b T.U32 (B.imm 3) in
  let s1 = B.add b T.U32 (B.reg x) (B.reg y) in
  let s2 = B.add b T.U32 (B.reg s1) (B.reg z) in
  let base = B.ld_param b T.U64 out in
  B.st b T.Global T.U32 (B.reg base) 0 (B.reg s2);
  (B.finish b, x, y, z)

let test_interference_triangle () =
  let k, x, y, z = chain_kernel () in
  let _, _, g = analyse k in
  check "x-y interfere" true (Regalloc.Interference.interferes g x y);
  check "y-z interfere" true (Regalloc.Interference.interferes g y z);
  check "x-z interfere" true (Regalloc.Interference.interferes g x z);
  check "no self edges" false (Regalloc.Interference.interferes g x x)

let test_copy_exception () =
  (* mov d, s with s dead after: d and s must not interfere *)
  let b = B.create "copy" in
  let out = B.param b "out" T.U64 in
  let s = B.mov b T.U32 (B.imm 7) in
  let d = B.mov b T.U32 (B.reg s) in
  let base = B.ld_param b T.U64 out in
  B.st b T.Global T.U32 (B.reg base) 0 (B.reg d);
  let k = B.finish b in
  let _, _, g = analyse k in
  check "copy source exempt" false (Regalloc.Interference.interferes g s d)

let test_cross_class_no_edges () =
  let b = B.create "classes" in
  let out = B.param b "out" T.U64 in
  let x = B.mov b T.U32 (B.imm 1) in
  let w = B.mov b T.U64 (B.imm 2) in
  let x' = B.add b T.U32 (B.reg x) (B.imm 1) in
  let w' = B.add b T.U64 (B.reg w) (B.imm 1) in
  let base = B.ld_param b T.U64 out in
  B.st b T.Global T.U32 (B.reg base) 0 (B.reg x');
  B.st b T.Global T.U64 (B.reg base) 8 (B.reg w');
  let k = B.finish b in
  let _, _, g = analyse k in
  check "32/64-bit never interfere" false (Regalloc.Interference.interferes g x w)

let prop_interference_symmetric =
  QCheck.Test.make ~count:30 ~name:"interference graph is symmetric"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let _, _, g = analyse k in
      List.for_all
        (fun a ->
           Ptx.Reg.Set.for_all
             (fun b' -> Regalloc.Interference.interferes g b' a)
             (Regalloc.Interference.neighbors g a))
        (Regalloc.Interference.nodes g))

(* ---------- colouring ---------- *)

let color_ok graph cls result =
  List.for_all
    (fun a ->
       match Ptx.Reg.Map.find_opt a result.Regalloc.Coloring.assignment with
       | None -> true
       | Some ca ->
         Ptx.Reg.Set.for_all
           (fun n ->
              match Ptx.Reg.Map.find_opt n result.Regalloc.Coloring.assignment with
              | Some cn -> cn <> ca
              | None -> true)
           (Regalloc.Interference.neighbors graph a))
    (Regalloc.Interference.nodes_of_class graph cls)

let test_coloring_triangle_needs_three () =
  let k, _, _, _ = chain_kernel () in
  let _, _, g = analyse k in
  let cost _ = 1.0 in
  let r = Regalloc.Coloring.color ~graph:g ~cls:T.C32 ~k:16 ~spill_cost:cost () in
  check "valid colouring" true (color_ok g T.C32 r);
  check "no spills with 16 colours" true (r.Regalloc.Coloring.spilled = []);
  check "at least 3 colours for the triangle" true
    (r.Regalloc.Coloring.colors_used >= 3)

let test_coloring_spills_under_pressure () =
  let k, _, _, _ = chain_kernel () in
  let _, _, g = analyse k in
  let cost _ = 1.0 in
  let r = Regalloc.Coloring.color ~graph:g ~cls:T.C32 ~k:2 ~spill_cost:cost () in
  check "spills when 2 colours" true (r.Regalloc.Coloring.spilled <> []);
  check "still valid for coloured nodes" true (color_ok g T.C32 r)

let test_type_strict_prefers_same_type () =
  (* non-interfering f32 and u32 registers: strict colouring uses more
     colours (register waste) than loose colouring *)
  let b = B.create "waste" in
  let out = B.param b "out" T.U64 in
  let x = B.mov b T.U32 (B.imm 1) in
  let x' = B.add b T.U32 (B.reg x) (B.imm 1) in
  let base = B.ld_param b T.U64 out in
  B.st b T.Global T.U32 (B.reg base) 0 (B.reg x');
  let f = B.mov b T.F32 (B.fimm 1.0) in
  let f' = B.add b T.F32 (B.reg f) (B.fimm 1.0) in
  B.st b T.Global T.F32 (B.reg base) 4 (B.reg f');
  let k = B.finish b in
  let _, _, g = analyse k in
  let cost _ = 1.0 in
  let strict =
    Regalloc.Coloring.color ~type_strict:true ~graph:g ~cls:T.C32 ~k:16
      ~spill_cost:cost ()
  in
  let loose =
    Regalloc.Coloring.color ~type_strict:false ~graph:g ~cls:T.C32 ~k:16
      ~spill_cost:cost ()
  in
  check "strict >= loose colours" true
    (strict.Regalloc.Coloring.colors_used >= loose.Regalloc.Coloring.colors_used)

let test_linear_scan_valid () =
  let k = Workloads.App.kernel (Workloads.Suite.find "PATH") in
  let flow, live, g = analyse k in
  let cost _ = 1.0 in
  let r =
    Regalloc.Linear_scan.color ~flow ~live ~cls:T.C32 ~k:12 ~spill_cost:cost ()
  in
  check "linear scan colouring valid" true (color_ok g T.C32 r)

(* ---------- allocation audit (lib/verify) ----------

   The independent auditor re-derives live ranges on the pre-assignment
   kernel and checks every allocator invariant (simultaneously-live
   virtuals never share a physical register, the budget holds, spill
   slots are written before read and never overlap) — replacing the
   ad-hoc per-result interference spot checks used previously. *)

let audit_clean ?strategy ?shared_policy ~block_size ~reg_limit k label =
  let a =
    Regalloc.Allocator.allocate ?strategy ?shared_policy ~block_size
      ~reg_limit k
  in
  match Verify.Diagnostic.errors (Verify.Audit.check a) with
  | [] -> ()
  | errs -> Alcotest.failf "%s:\n%s" label (Verify.Diagnostic.render errs)

let strategies =
  [ (Regalloc.Allocator.Chaitin_briggs, "cb")
  ; (Regalloc.Allocator.Linear_scan, "ls")
  ]

let test_audit_suite_default_budgets () =
  List.iter
    (fun (app : Workloads.App.t) ->
       List.iter
         (fun (strategy, sname) ->
            audit_clean ~strategy ~block_size:app.Workloads.App.block_size
              ~reg_limit:app.Workloads.App.default_regs
              (Workloads.App.kernel app)
              (Printf.sprintf "%s@%d/%s" app.Workloads.App.abbr
                 app.Workloads.App.default_regs sname))
         strategies)
    Workloads.Suite.all

let test_audit_budget_sweep () =
  let k = Workloads.App.kernel (Workloads.Suite.find "CFD") in
  List.iter
    (fun (strategy, sname) ->
       List.iter
         (fun lim ->
            audit_clean ~strategy ~block_size:128 ~reg_limit:lim k
              (Printf.sprintf "CFD@%d/%s" lim sname))
         [ 24; 32; 40; 48; 56; 63 ])
    strategies

let test_audit_shared_spilling () =
  let k = Workloads.App.kernel (Workloads.Suite.find "STE") in
  audit_clean ~shared_policy:(`Spare 12288) ~block_size:128 ~reg_limit:40 k
    "STE@40 with Algorithm-1 shared spilling"

(* ---------- spill layout & insertion ---------- *)

let test_layout_alignment () =
  let regs =
    [ Ptx.Reg.make 0 T.F32; Ptx.Reg.make 1 T.U64; Ptx.Reg.make 2 T.U32
    ; Ptx.Reg.make 3 T.F64 ]
  in
  let spec = Regalloc.Spill.layout ~to_shared:(fun _ -> false) regs in
  List.iter
    (fun (p : Regalloc.Spill.placement) ->
       let w = T.width_bytes (Ptx.Reg.ty p.Regalloc.Spill.reg) in
       check "aligned" true (p.Regalloc.Spill.offset mod w = 0))
    spec.Regalloc.Spill.placements;
  let ranges =
    List.map
      (fun (p : Regalloc.Spill.placement) ->
         ( p.Regalloc.Spill.offset
         , p.Regalloc.Spill.offset + T.width_bytes (Ptx.Reg.ty p.Regalloc.Spill.reg) ))
      spec.Regalloc.Spill.placements
  in
  List.iteri
    (fun i (lo1, hi1) ->
       List.iteri
         (fun j (lo2, hi2) ->
            if i <> j then check "no overlap" true (hi1 <= lo2 || hi2 <= lo1))
         ranges)
    ranges;
  check "local bytes cover layout" true
    (List.for_all (fun (_, hi) -> hi <= spec.Regalloc.Spill.local_bytes) ranges)

let test_spill_apply_counts () =
  let k, x, _, _ = chain_kernel () in
  let spec = Regalloc.Spill.layout ~to_shared:(fun _ -> false) [ x ] in
  let k', stats = Regalloc.Spill.apply ~block_size:32 k spec in
  check "valid after spilling" true (Result.is_ok (Ptx.Kernel.validate k'));
  check_int "local accesses" 2 stats.Regalloc.Spill.num_local;
  check_int "address setup" 1 stats.Regalloc.Spill.num_other;
  check "spill stack declared" true (Ptx.Kernel.local_bytes k' > 0);
  check_int "instruction growth" (Ptx.Kernel.instr_count k + 3)
    (Ptx.Kernel.instr_count k')

let test_spill_def_and_use_same_instr () =
  let b = B.create "accspill" in
  let out = B.param b "out" T.U64 in
  let acc = B.mov b T.U32 (B.imm 0) in
  B.acc_binop b I.Add T.U32 acc (B.imm 1);
  let base = B.ld_param b T.U64 out in
  B.st b T.Global T.U32 (B.reg base) 0 (B.reg acc);
  let k = B.finish b in
  let spec = Regalloc.Spill.layout ~to_shared:(fun _ -> false) [ acc ] in
  let k', stats = Regalloc.Spill.apply ~block_size:32 k spec in
  check "valid" true (Result.is_ok (Ptx.Kernel.validate k'));
  (* mov def -> store; acc+=1 -> load+store; final use -> load *)
  check_int "accesses for def+use" 4 stats.Regalloc.Spill.num_local

let test_shared_spill_addressing () =
  let k, x, y, _ = chain_kernel () in
  let spec = Regalloc.Spill.layout ~to_shared:(fun r -> Ptx.Reg.equal r x) [ x; y ] in
  let k', stats = Regalloc.Spill.apply ~block_size:64 k spec in
  check "valid" true (Result.is_ok (Ptx.Kernel.validate k'));
  check "has shared stack" true (Ptx.Kernel.shared_bytes k' > 0);
  check "has local stack" true (Ptx.Kernel.local_bytes k' > 0);
  check_int "shared accesses counted" 2 stats.Regalloc.Spill.num_shared;
  check_int "shared sized for the block"
    (spec.Regalloc.Spill.shared_bytes_per_thread * 64)
    (Ptx.Kernel.shared_bytes k')

let test_infra_registers () =
  let k, x, _, _ = chain_kernel () in
  let spec = Regalloc.Spill.layout ~to_shared:(fun _ -> false) [ x ] in
  let k', _ = Regalloc.Spill.apply ~block_size:32 k spec in
  let infra = Regalloc.Spill.infra_registers k k' in
  check "infra nonempty" true (not (Ptx.Reg.Set.is_empty infra));
  check "original registers not infra" false (Ptx.Reg.Set.mem x infra)

(* ---------- knapsack / Algorithm 1 ---------- *)

let brute_force_knapsack values weights capacity =
  let n = Array.length values in
  let best = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    let v = ref 0. and w = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        v := !v +. values.(i);
        w := !w + weights.(i)
      end
    done;
    if !w <= capacity && !v > !best then best := !v
  done;
  !best

let prop_knapsack_optimal =
  QCheck.Test.make ~count:100 ~name:"knapsack matches brute force"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 8) (int_range 0 50))
        (list_of_size Gen.(int_range 1 8) (int_range 0 16)))
    (fun (vs, ws) ->
       let n = min (List.length vs) (List.length ws) in
       QCheck.assume (n > 0);
       let values = Array.of_list (List.filteri (fun i _ -> i < n) vs) in
       let weights =
         Array.of_list (List.filteri (fun i _ -> i < n) ws)
         |> Array.map (fun w -> w * 4)
       in
       let values_f = Array.map float_of_int values in
       let capacity = 96 in
       let mask =
         Regalloc.Shared_spill.knapsack ~values:values_f ~weights ~capacity
       in
       let got = ref 0. and w = ref 0 in
       Array.iteri
         (fun i b ->
            if b then begin
              got := !got +. values_f.(i);
              w := !w + weights.(i)
            end)
         mask;
       !w <= capacity
       && Float.abs (!got -. brute_force_knapsack values_f weights capacity) < 1e-9)

let test_split_by_type_and_chunk () =
  let regs =
    List.init 10 (fun i -> Ptx.Reg.make i (if i < 6 then T.F32 else T.U32))
  in
  let subs =
    Regalloc.Shared_spill.split ~chunk:4
      ~gain:(fun r -> float_of_int (Ptx.Reg.id r))
      regs
  in
  check_int "sub-stack count" 3 (List.length subs);
  List.iter
    (fun s ->
       check "single type per sub-stack" true
         (List.for_all
            (fun r -> T.equal_scalar (Ptx.Reg.ty r) s.Regalloc.Shared_spill.sty)
            s.Regalloc.Shared_spill.sregs))
    subs

let test_optimize_respects_budget () =
  let regs = List.init 12 (fun i -> Ptx.Reg.make i T.F32) in
  let to_shared =
    Regalloc.Shared_spill.optimize ~gain:(fun _ -> 2.) ~block_size:128
      ~spare_shm_bytes:2048 regs
  in
  let chosen = List.filter to_shared regs in
  (* each chunk of 4 f32 = 16B/thread x 128 threads = 2048B; one fits *)
  check_int "budget respected" 4 (List.length chosen)

let test_optimize_prefers_high_gain () =
  let regs = List.init 8 (fun i -> Ptx.Reg.make i T.F32) in
  (* ids 0..3 high gain, 4..7 low *)
  let gain r = if Ptx.Reg.id r < 4 then 100. else 1. in
  let to_shared =
    Regalloc.Shared_spill.optimize ~chunk:4 ~gain ~block_size:128
      ~spare_shm_bytes:2048 regs
  in
  check "high-gain chunk chosen" true
    (List.for_all (fun r -> to_shared r = (Ptx.Reg.id r < 4)) regs)

(* ---------- allocator end-to-end ---------- *)

let test_allocator_respects_limit () =
  let k = Workloads.App.kernel (Workloads.Suite.find "CFD") in
  List.iter
    (fun lim ->
       let a = Regalloc.Allocator.allocate ~block_size:128 ~reg_limit:lim k in
       check "units within limit" true (a.Regalloc.Allocator.units_used <= lim))
    [ 24; 32; 40; 48; 56; 63 ]

let test_allocator_no_spill_with_headroom () =
  let app = Workloads.Suite.find "STM" in
  let k = Workloads.App.kernel app in
  let flow = Cfg.Flow.of_kernel k in
  let live = Cfg.Liveness.compute flow in
  let p = Cfg.Liveness.max_pressure live in
  let a = Regalloc.Allocator.allocate ~block_size:128 ~reg_limit:(p + 8) k in
  check "no spills with head-room" true (a.Regalloc.Allocator.spilled = [])

let test_allocator_spill_count_monotone () =
  let k = Workloads.App.kernel (Workloads.Suite.find "CFD") in
  let spills lim =
    List.length
      (Regalloc.Allocator.allocate ~block_size:128 ~reg_limit:lim k)
        .Regalloc.Allocator.spilled
  in
  check "fewer registers, not fewer spills" true (spills 24 >= spills 40);
  check "fewer registers, not fewer spills (2)" true (spills 40 >= spills 56)

let test_allocator_shared_policy () =
  let k = Workloads.App.kernel (Workloads.Suite.find "STE") in
  let local = Regalloc.Allocator.allocate ~block_size:128 ~reg_limit:40 k in
  let shared =
    Regalloc.Allocator.allocate ~shared_policy:(`Spare 12288) ~block_size:128
      ~reg_limit:40 k
  in
  check "local-only has no shared spills" true
    (local.Regalloc.Allocator.stats.Regalloc.Spill.num_shared = 0);
  check "shared policy moves accesses" true
    (shared.Regalloc.Allocator.stats.Regalloc.Spill.num_shared > 0);
  check "shared policy reduces local accesses" true
    (shared.Regalloc.Allocator.stats.Regalloc.Spill.num_local
     < local.Regalloc.Allocator.stats.Regalloc.Spill.num_local)

let test_spill_bytes_decreasing () =
  let k = Workloads.App.kernel (Workloads.Suite.find "CFD") in
  let bytes lim =
    Regalloc.Allocator.spill_bytes
      (Regalloc.Allocator.allocate ~block_size:128 ~reg_limit:lim k)
  in
  check "spill bytes shrink with more registers" true (bytes 24 > bytes 56)

let test_allocator_rejects_tiny_limit () =
  let k = Workloads.App.kernel (Workloads.Suite.find "CFD") in
  try
    let _ = Regalloc.Allocator.allocate ~block_size:128 ~reg_limit:4 k in
    Alcotest.fail "limit 4 must be infeasible"
  with Failure _ -> ()

(* ---------- coalescing & rematerialisation ---------- *)

let test_coalesce_removes_copy () =
  (* mov d, s with s dead after: d/s must coalesce and the copy vanish *)
  let b = B.create "co" in
  let out = B.param b "out" T.U64 in
  let s' = B.mov b T.U32 (B.imm 7) in
  let d = B.mov b T.U32 (B.reg s') in
  let e = B.add b T.U32 (B.reg d) (B.imm 1) in
  let base = B.ld_param b T.U64 out in
  B.st b T.Global T.U32 (B.reg base) 0 (B.reg e);
  let k = B.finish b in
  let flow = Cfg.Flow.of_kernel k in
  let live = Cfg.Liveness.compute flow in
  let graph = Regalloc.Interference.build flow live in
  let aliases =
    Regalloc.Coalesce.build_aliases ~graph ~flow
      ~k_of:(fun _ -> 16)
      ~protected:Ptx.Reg.Set.empty
  in
  check "alias found" false (Ptx.Reg.Map.is_empty aliases);
  let k', removed = Regalloc.Coalesce.apply k aliases in
  check "a copy was removed" true (removed >= 1);
  check "still valid" true (Result.is_ok (Ptx.Kernel.validate k'));
  check_int "one instruction fewer" (Ptx.Kernel.instr_count k - removed)
    (Ptx.Kernel.instr_count k')

let test_coalesce_respects_interference () =
  (* mov d, s where s stays live: must NOT coalesce *)
  let b = B.create "noco" in
  let out = B.param b "out" T.U64 in
  let s' = B.mov b T.U32 (B.imm 7) in
  let d = B.mov b T.U32 (B.reg s') in
  B.acc_binop b I.Add T.U32 d (B.imm 1);
  (* s' used again: live across the redefinition of d *)
  let e = B.add b T.U32 (B.reg d) (B.reg s') in
  let base = B.ld_param b T.U64 out in
  B.st b T.Global T.U32 (B.reg base) 0 (B.reg e);
  let k = B.finish b in
  let flow = Cfg.Flow.of_kernel k in
  let live = Cfg.Liveness.compute flow in
  let graph = Regalloc.Interference.build flow live in
  let aliases =
    Regalloc.Coalesce.build_aliases ~graph ~flow
      ~k_of:(fun _ -> 16)
      ~protected:Ptx.Reg.Set.empty
  in
  let merged_ds =
    match Ptx.Reg.Map.find_opt d aliases with
    | Some root -> Ptx.Reg.equal root s'
    | None ->
      (match Ptx.Reg.Map.find_opt s' aliases with
       | Some root -> Ptx.Reg.equal root d
       | None -> false)
  in
  check "interfering copy not coalesced" false merged_ds

let test_remat_avoids_stack () =
  let k, x, _, _ = chain_kernel () in
  (* x is a single-def constant mov: rematerialisable *)
  let spec =
    Regalloc.Spill.layout
      ~remat:(fun r -> if Ptx.Reg.equal r x then Some (I.Oimm 1L) else None)
      ~to_shared:(fun _ -> false)
      [ x ]
  in
  check "no stack slot" true (spec.Regalloc.Spill.placements = []);
  check_int "listed as remat" 1 (List.length spec.Regalloc.Spill.remat);
  let k', stats = Regalloc.Spill.apply ~block_size:32 k spec in
  check "valid" true (Result.is_ok (Ptx.Kernel.validate k'));
  check_int "no local traffic" 0 stats.Regalloc.Spill.num_local;
  check "remat moves inserted" true (stats.Regalloc.Spill.num_remat >= 1);
  check_int "no local stack declared" 0 (Ptx.Kernel.local_bytes k')

let prop_coalesce_preserves_semantics =
  QCheck.Test.make ~count:30 ~name:"coalescing preserves semantics"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let a =
        Regalloc.Allocator.allocate ~coalesce:true ~block_size:64 ~reg_limit:14 k
      in
      Testsupport.Gen.outputs_equal
        (Testsupport.Gen.run_emulated k)
        (Testsupport.Gen.run_emulated a.Regalloc.Allocator.kernel))

let prop_remat_preserves_semantics =
  QCheck.Test.make ~count:30 ~name:"rematerialisation preserves semantics"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let a =
        Regalloc.Allocator.allocate ~remat:true ~block_size:64 ~reg_limit:14 k
      in
      Testsupport.Gen.outputs_equal
        (Testsupport.Gen.run_emulated k)
        (Testsupport.Gen.run_emulated a.Regalloc.Allocator.kernel))

let prop_coalesce_remat_together =
  QCheck.Test.make ~count:30 ~name:"coalesce+remat preserve semantics"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let a =
        Regalloc.Allocator.allocate ~coalesce:true ~remat:true ~block_size:64
          ~reg_limit:14 k
      in
      Testsupport.Gen.outputs_equal
        (Testsupport.Gen.run_emulated k)
        (Testsupport.Gen.run_emulated a.Regalloc.Allocator.kernel))

let test_remat_reduces_local_insts () =
  let k = Workloads.App.kernel (Workloads.Suite.find "CFD") in
  let base = Regalloc.Allocator.allocate ~block_size:128 ~reg_limit:40 k in
  let rm = Regalloc.Allocator.allocate ~remat:true ~block_size:128 ~reg_limit:40 k in
  check "remat never increases local accesses" true
    (rm.Regalloc.Allocator.stats.Regalloc.Spill.num_local
     <= base.Regalloc.Allocator.stats.Regalloc.Spill.num_local)

(* the central property: allocation (with spilling) preserves semantics *)
let semantics_preserved ?shared_policy ?strategy ~reg_limit k =
  let a =
    Regalloc.Allocator.allocate ?shared_policy ?strategy ~block_size:64
      ~reg_limit k
  in
  let before = Testsupport.Gen.run_emulated k in
  let after = Testsupport.Gen.run_emulated a.Regalloc.Allocator.kernel in
  Testsupport.Gen.outputs_equal before after

let prop_allocation_preserves_semantics =
  QCheck.Test.make ~count:40 ~name:"allocation preserves semantics (tight limit)"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      semantics_preserved ~reg_limit:14 k)

let prop_allocation_preserves_semantics_shared =
  QCheck.Test.make ~count:25
    ~name:"allocation preserves semantics (shared spilling)"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      semantics_preserved ~shared_policy:(`Spare 8192) ~reg_limit:14 k)

let prop_linear_scan_preserves_semantics =
  QCheck.Test.make ~count:25 ~name:"linear scan preserves semantics"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      semantics_preserved ~strategy:Regalloc.Allocator.Linear_scan ~reg_limit:16 k)

let prop_allocated_demand_bounded =
  QCheck.Test.make ~count:30 ~name:"allocated kernel respects the limit"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let lim = 14 in
      let a = Regalloc.Allocator.allocate ~block_size:64 ~reg_limit:lim k in
      a.Regalloc.Allocator.units_used <= lim)

let () =
  Alcotest.run "regalloc"
    [ ( "interference"
      , [ Alcotest.test_case "triangle" `Quick test_interference_triangle
        ; Alcotest.test_case "copy exception" `Quick test_copy_exception
        ; Alcotest.test_case "cross-class" `Quick test_cross_class_no_edges
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_interference_symmetric ] )
    ; ( "coloring"
      , [ Alcotest.test_case "triangle needs 3" `Quick test_coloring_triangle_needs_three
        ; Alcotest.test_case "spills under pressure" `Quick test_coloring_spills_under_pressure
        ; Alcotest.test_case "type-strict waste" `Quick test_type_strict_prefers_same_type
        ; Alcotest.test_case "linear scan valid" `Quick test_linear_scan_valid
        ] )
    ; ( "audit"
      , [ Alcotest.test_case "suite at default budgets" `Slow
            test_audit_suite_default_budgets
        ; Alcotest.test_case "CFD budget sweep" `Quick test_audit_budget_sweep
        ; Alcotest.test_case "shared spilling" `Quick test_audit_shared_spilling
        ] )
    ; ( "spill"
      , [ Alcotest.test_case "layout alignment" `Quick test_layout_alignment
        ; Alcotest.test_case "apply counts" `Quick test_spill_apply_counts
        ; Alcotest.test_case "def+use same instruction" `Quick test_spill_def_and_use_same_instr
        ; Alcotest.test_case "shared addressing" `Quick test_shared_spill_addressing
        ; Alcotest.test_case "infra registers" `Quick test_infra_registers
        ] )
    ; ( "algorithm1"
      , [ Alcotest.test_case "split by type and chunk" `Quick test_split_by_type_and_chunk
        ; Alcotest.test_case "budget respected" `Quick test_optimize_respects_budget
        ; Alcotest.test_case "prefers high gain" `Quick test_optimize_prefers_high_gain
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_knapsack_optimal ] )
    ; ( "allocator"
      , [ Alcotest.test_case "respects limit" `Quick test_allocator_respects_limit
        ; Alcotest.test_case "no spill with head-room" `Quick test_allocator_no_spill_with_headroom
        ; Alcotest.test_case "spill monotonicity" `Quick test_allocator_spill_count_monotone
        ; Alcotest.test_case "shared policy effective" `Quick test_allocator_shared_policy
        ; Alcotest.test_case "spill bytes decrease" `Quick test_spill_bytes_decreasing
        ; Alcotest.test_case "rejects tiny limit" `Quick test_allocator_rejects_tiny_limit
        ] )
    ; ( "extensions"
      , [ Alcotest.test_case "coalesce removes copy" `Quick test_coalesce_removes_copy
        ; Alcotest.test_case "coalesce respects interference" `Quick
            test_coalesce_respects_interference
        ; Alcotest.test_case "remat avoids the stack" `Quick test_remat_avoids_stack
        ; Alcotest.test_case "remat reduces local accesses" `Quick
            test_remat_reduces_local_insts
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_coalesce_preserves_semantics
            ; prop_remat_preserves_semantics
            ; prop_coalesce_remat_together
            ] )
    ; ( "semantics"
      , List.map QCheck_alcotest.to_alcotest
          [ prop_allocation_preserves_semantics
          ; prop_allocation_preserves_semantics_shared
          ; prop_linear_scan_preserves_semantics
          ; prop_allocated_demand_bounded
          ] )
    ]
