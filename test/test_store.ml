(* Durability tests for the persistent content-addressed store:
   crash-safe writes (a writer killed mid-write never corrupts the
   store), budget-driven LRU eviction that respects pinned readers, and
   bit-identical round-trips through the engine's disk layer. *)

let check = Alcotest.(check bool)

let temp_dir prefix =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.int 100000))
  in
  Unix.mkdir d 0o755;
  d

let key_of i = Printf.sprintf "k%04d" i

(* ---------- basic round-trip ---------- *)

let test_roundtrip () =
  let dir = temp_dir "store-rt" in
  let s = Store.open_ dir in
  Store.put s ~kind:"stats" ~key:"a" "hello";
  Alcotest.(check (option string)) "get back" (Some "hello")
    (Store.get s ~kind:"stats" ~key:"a");
  check "mem" true (Store.mem s ~kind:"stats" ~key:"a");
  check "absent" false (Store.mem s ~kind:"stats" ~key:"b");
  Store.put_value s ~kind:"alloc" ~key:"v" (42, "x", [ 1.5 ]);
  Alcotest.(check (option (triple int string (list (float 0.0)))))
    "value round-trip"
    (Some (42, "x", [ 1.5 ]))
    (Store.get_value s ~kind:"alloc" ~key:"v");
  Store.close s;
  (* survives reopen *)
  let s2 = Store.open_ dir in
  Alcotest.(check (option string)) "persisted" (Some "hello")
    (Store.get s2 ~kind:"stats" ~key:"a");
  Store.close s2

(* ---------- crash safety ---------- *)

(* Fork a child that writes entries in a tight loop and SIGKILL it
   mid-stream. Whatever it managed to complete must read back intact
   after reopen; a torn in-progress write must be invisible. *)
let test_killed_writer () =
  let dir = temp_dir "store-kill" in
  let payload = String.make 65536 'x' in
  (match Unix.fork () with
   | 0 ->
     let s = Store.open_ dir in
     (* unbounded loop: the parent's SIGKILL is the only exit *)
     let rec spin i =
       Store.put s ~kind:"trace" ~key:(key_of (i mod 512)) payload;
       spin (i + 1)
     in
     spin 0
   | pid ->
     Unix.sleepf 0.3;
     Unix.kill pid Sys.sigkill;
     ignore (Unix.waitpid [] pid));
  let s = Store.open_ dir in
  let st = Store.stats s in
  check "the killed writer completed some entries" true (st.Store.entries > 0);
  (* every surviving entry must verify — corrupt ones read as None and
     are counted *)
  for i = 0 to 511 do
    let key = key_of i in
    if Store.mem s ~kind:"trace" ~key then
      Alcotest.(check (option string))
        (key ^ " intact") (Some payload)
        (Store.get s ~kind:"trace" ~key)
  done;
  check "no corrupt entries after kill" true ((Store.stats s).Store.corrupt = 0);
  (* open_ must have cleared any stale temp file *)
  let tmps = Sys.readdir (Filename.concat dir "tmp") in
  check "tmp dir swept" true (Array.length tmps = 0);
  Store.close s

(* A corrupted entry file (bit rot) is detected, dropped and reported
   absent instead of returned. *)
let test_corrupt_entry_dropped () =
  let dir = temp_dir "store-corrupt" in
  let s = Store.open_ dir in
  Store.put s ~kind:"stats" ~key:"good" "payload-one";
  Store.put s ~kind:"stats" ~key:"bad" "payload-two";
  Store.close s;
  (* flip bytes in the middle of "bad"'s file *)
  let victim = ref None in
  let rec walk d =
    Array.iter
      (fun n ->
         let p = Filename.concat d n in
         if Sys.is_directory p then walk p
         else if n = "bad" then victim := Some p)
      (Sys.readdir d)
  in
  walk dir;
  let path = Option.get !victim in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  let len = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd (len - 4) Unix.SEEK_SET);
  ignore (Unix.write_substring fd "????" 0 4);
  Unix.close fd;
  let s = Store.open_ dir in
  Alcotest.(check (option string)) "corrupt entry absent" None
    (Store.get s ~kind:"stats" ~key:"bad");
  check "corruption counted" true ((Store.stats s).Store.corrupt > 0);
  Alcotest.(check (option string)) "good entry unaffected" (Some "payload-one")
    (Store.get s ~kind:"stats" ~key:"good");
  Store.close s

(* ---------- budget / eviction ---------- *)

let test_gc_respects_budget () =
  let dir = temp_dir "store-gc" in
  let payload = String.make 1024 'p' in
  (* room for roughly 8 of the ~1KiB entries *)
  let s = Store.open_ ~budget:(8 * 1100) dir in
  for i = 0 to 31 do
    Store.put s ~kind:"trace" ~key:(key_of i) payload
  done;
  let st = Store.stats s in
  check "bytes within budget" true (st.Store.bytes <= Store.budget s);
  check "evictions happened" true (st.Store.evictions > 0);
  check "newest entry survived" true
    (Store.mem s ~kind:"trace" ~key:(key_of 31));
  check "oldest entry evicted" false
    (Store.mem s ~kind:"trace" ~key:(key_of 0));
  (* LRU, not insertion order: touch an old survivor, then overflow —
     the touched one must outlive untouched older ones *)
  let survivors =
    List.filter
      (fun i -> Store.mem s ~kind:"trace" ~key:(key_of i))
      (List.init 32 Fun.id)
  in
  let oldest = List.hd survivors in
  ignore (Store.get s ~kind:"trace" ~key:(key_of oldest));
  for i = 32 to 36 do
    Store.put s ~kind:"trace" ~key:(key_of i) payload
  done;
  check "recently-read entry survived eviction" true
    (Store.mem s ~kind:"trace" ~key:(key_of oldest));
  Store.close s

(* An entry pinned by an in-progress [with_entry] read must survive a
   budget overflow that would otherwise evict it as LRU. *)
let test_pinned_entry_not_evicted () =
  let dir = temp_dir "store-pin" in
  let payload = String.make 1024 'q' in
  let s = Store.open_ ~budget:(4 * 1100) dir in
  Store.put s ~kind:"trace" ~key:"pinned" payload;
  let observed =
    Store.with_entry s ~kind:"trace" ~key:"pinned" (fun data ->
      (* make "pinned" the LRU victim-to-be while it is being read *)
      for i = 0 to 15 do
        Store.put s ~kind:"trace" ~key:(key_of i) payload
      done;
      check "pinned entry still present mid-read" true
        (Store.mem s ~kind:"trace" ~key:"pinned");
      data)
  in
  Alcotest.(check (option string)) "pinned read saw intact data"
    (Some payload) observed;
  (* unpinned now: the next overflow may evict it *)
  for i = 16 to 23 do
    Store.put s ~kind:"trace" ~key:(key_of i) payload
  done;
  check "unpinned entry eventually evictable" false
    (Store.mem s ~kind:"trace" ~key:"pinned");
  check "budget holds" true (Store.bytes s <= Store.budget s);
  Store.close s

(* ---------- engine round-trip ---------- *)

(* Record through one engine into a store; reopen the store under a
   fresh engine and re-ask for the same points: zero functional runs,
   and Stats.t fingerprints bit-identical to the recording pass. *)
let test_engine_roundtrip_bit_identical () =
  let dir = temp_dir "store-engine" in
  let points engine =
    List.map
      (fun abbr ->
         let app = Workloads.Suite.find abbr in
         let a =
           Crat.Engine.allocate engine app
             ~reg_limit:app.Workloads.App.default_regs
         in
         let input = Workloads.App.default_input app in
         let launch =
           Workloads.App.launch app ~kernel:a.Regalloc.Allocator.kernel ~input ()
         in
         (launch, Gpusim.Config.fermi, 2))
      [ "BFS"; "GAU" ]
  in
  let fingerprint stats =
    Digest.to_hex (Digest.string (Marshal.to_string stats []))
  in
  let cold =
    let store = Store.open_ dir in
    let engine = Crat.Engine.create ~store () in
    let stats = Crat.Engine.simulate_batch engine (points engine) in
    let r = Crat.Engine.report engine in
    check "cold pass simulated" true (r.Crat.Engine.sim_runs > 0);
    Store.close store;
    fingerprint stats
  in
  let warm =
    let store = Store.open_ dir in
    let engine = Crat.Engine.create ~store () in
    let stats = Crat.Engine.simulate_batch engine (points engine) in
    let r = Crat.Engine.report engine in
    check "warm pass ran nothing" true (r.Crat.Engine.sim_runs = 0);
    check "warm pass answered from the store" true
      (r.Crat.Engine.sim_hits > 0);
    check "warm allocations from the store" true
      (r.Crat.Engine.alloc_runs = 0 && r.Crat.Engine.alloc_hits > 0);
    Store.close store;
    fingerprint stats
  in
  Alcotest.(check string) "fingerprints bit-identical" cold warm

(* Trace spill: with stats entries deleted but traces on disk, a fresh
   engine replays instead of re-executing. *)
let test_trace_fallback_from_disk () =
  let dir = temp_dir "store-tracefb" in
  let point engine =
    let app = Workloads.Suite.find "BFS" in
    let a =
      Crat.Engine.allocate engine app ~reg_limit:app.Workloads.App.default_regs
    in
    let input = Workloads.App.default_input app in
    let launch =
      Workloads.App.launch app ~kernel:a.Regalloc.Allocator.kernel ~input ()
    in
    launch
  in
  let cold_stats =
    let store = Store.open_ dir in
    let engine = Crat.Engine.create ~store () in
    let st = Crat.Engine.simulate engine (point engine) Gpusim.Config.fermi ~tlp:2 in
    Store.close store;
    st
  in
  (* drop the cached statistics, keep the recorded trace *)
  let store = Store.open_ dir in
  let engine = Crat.Engine.create ~store () in
  let launch = point engine in
  let skey = Crat.Engine.sim_key engine launch Gpusim.Config.fermi ~tlp:2 in
  Store.delete store ~kind:"stats" ~key:skey;
  let st = Crat.Engine.simulate engine launch Gpusim.Config.fermi ~tlp:2 in
  let r = Crat.Engine.report engine in
  check "answered by replaying the stored trace" true
    (r.Crat.Engine.trace_replays > 0 && r.Crat.Engine.trace_records = 0);
  Alcotest.(check string) "replayed stats bit-identical"
    (Digest.to_hex (Digest.string (Marshal.to_string cold_stats [])))
    (Digest.to_hex (Digest.string (Marshal.to_string st [])));
  Store.close store

let () =
  Random.self_init ();
  Alcotest.run "store"
    [ ( "basic"
      , [ Alcotest.test_case "round-trip and reopen" `Quick test_roundtrip ] )
    ; ( "durability"
      , [ Alcotest.test_case "writer killed mid-write" `Quick test_killed_writer
        ; Alcotest.test_case "corrupt entry dropped" `Quick
            test_corrupt_entry_dropped
        ] )
    ; ( "budget"
      , [ Alcotest.test_case "gc respects byte budget" `Quick
            test_gc_respects_budget
        ; Alcotest.test_case "pinned entries never evicted" `Quick
            test_pinned_entry_not_evicted
        ] )
    ; ( "engine"
      , [ Alcotest.test_case "cross-process round-trip bit-identical" `Slow
            test_engine_roundtrip_bit_identical
        ; Alcotest.test_case "trace fallback from disk" `Slow
            test_trace_fallback_from_disk
        ] )
    ]
