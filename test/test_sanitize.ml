(* Tests for the hybrid memory-safety sanitizer: the S-code clinic
   kernel renders stably against a golden file, the whole workload
   suite proves clean at every compiler stage with a high discharge
   rate, the sanitized suite replay observes no violation, and the
   corpus' data-dependent out-of-bounds store — unprovable statically —
   is caught dynamically at its exact pc. *)

module D = Verify.Diagnostic
module San = Verify.Sanitize
module Sancheck = Gpusim.Sancheck

let r id ty = Ptx.Reg.make id ty
let i x = Ptx.Kernel.I x

(* One kernel emitting every S-code: a uniform shared store past its
   array (S401), a local store past the frame (S402), and a
   parameter-indexed shared store (S403). *)
let clinic () =
  let v = r 0 Ptx.Types.U32
  and idx = r 1 Ptx.Types.U32
  and idx64 = r 2 Ptx.Types.U64
  and off = r 3 Ptx.Types.U64
  and base = r 4 Ptx.Types.U64
  and addr = r 5 Ptx.Types.U64 in
  { Ptx.Kernel.name = "clinic"
  ; params = [ ("idx", Ptx.Types.U32) ]
  ; decls =
      [ { Ptx.Kernel.dname = "sdata"
        ; dspace = Ptx.Types.Shared
        ; delem = Ptx.Types.B32
        ; dcount = 8
        ; dalign = 4
        }
      ; { Ptx.Kernel.dname = "lbuf"
        ; dspace = Ptx.Types.Local
        ; delem = Ptx.Types.B32
        ; dcount = 4
        ; dalign = 4
        }
      ]
  ; body =
      [| i (Ptx.Instr.Mov (Ptx.Types.U32, v, Ptx.Instr.Oimm 7L))
       ; i
           (Ptx.Instr.St
              ( Ptx.Types.Shared, Ptx.Types.U32
              , { Ptx.Instr.base = Ptx.Instr.Osym "sdata"; offset = 64 }
              , Ptx.Instr.Oreg v ))
       ; i
           (Ptx.Instr.St
              ( Ptx.Types.Local, Ptx.Types.U32
              , { Ptx.Instr.base = Ptx.Instr.Osym "lbuf"; offset = 16 }
              , Ptx.Instr.Oreg v ))
       ; i
           (Ptx.Instr.Ld
              ( Ptx.Types.Param, Ptx.Types.U32, idx
              , { Ptx.Instr.base = Ptx.Instr.Oparam "idx"; offset = 0 } ))
       ; i (Ptx.Instr.Cvt (Ptx.Types.U64, Ptx.Types.U32, idx64, Ptx.Instr.Oreg idx))
       ; i
           (Ptx.Instr.Binop
              ( Ptx.Instr.Mul_lo, Ptx.Types.U64, off, Ptx.Instr.Oreg idx64
              , Ptx.Instr.Oimm 4L ))
       ; i (Ptx.Instr.Mov (Ptx.Types.U64, base, Ptx.Instr.Osym "sdata"))
       ; i
           (Ptx.Instr.Binop
              ( Ptx.Instr.Add, Ptx.Types.U64, addr, Ptx.Instr.Oreg base
              , Ptx.Instr.Oreg off ))
       ; i
           (Ptx.Instr.St
              ( Ptx.Types.Shared, Ptx.Types.U32
              , { Ptx.Instr.base = Ptx.Instr.Oreg addr; offset = 0 }
              , Ptx.Instr.Oreg v ))
       ; i Ptx.Instr.Ret
      |]
  }

(* ---------- golden rendering ---------- *)

let test_clinic_golden () =
  let report = San.sanitize_kernel ~block_size:64 (clinic ()) in
  let d = report.San.discharge in
  let actual =
    Printf.sprintf "# clinic: %d access(es), %d safe, %d oob, %d residual\n%s\n"
      d.San.total d.San.safe d.San.oob d.San.residual
      (D.render report.San.diags)
  in
  match Sys.getenv_opt "SANITIZE_GOLDEN_WRITE" with
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc actual)
  | None ->
    let path =
      List.find Sys.file_exists
        [ "golden/sanitize.expected"; "test/golden/sanitize.expected" ]
    in
    let expected = In_channel.with_open_text path In_channel.input_all in
    Alcotest.(check string) "sanitize rendering" expected actual

let test_clinic_all_codes () =
  let diags = San.check_kernel ~block_size:64 (clinic ()) in
  List.iter
    (fun code ->
       Alcotest.(check bool)
         (Printf.sprintf "clinic emits %s" code)
         true
         (List.exists (fun d -> d.D.code = code) diags))
    [ "S401"; "S402"; "S403" ];
  List.iter
    (fun (d : D.t) ->
       Alcotest.(check bool)
         (Printf.sprintf "code %s documented" d.D.code)
         true
         (List.mem_assoc d.D.code D.all_codes))
    diags

(* ---------- suite sweep: static proofs at every stage ---------- *)

let test_suite_sweep () =
  let total = ref 0 and safe = ref 0 in
  List.iter
    (fun (app : Workloads.App.t) ->
       List.iter
         (fun (sr : Crat.Sanitize.stage_report) ->
            let r = sr.Crat.Sanitize.report in
            let d = r.San.discharge in
            total := !total + d.San.total;
            safe := !safe + d.San.safe;
            match D.errors r.San.diags with
            | [] -> ()
            | errs ->
              Alcotest.failf "%s %s:\n%s" app.Workloads.App.abbr
                sr.Crat.Sanitize.stage (D.render errs))
         (Crat.Sanitize.stages app))
    Workloads.Suite.all;
  let pct = 100.0 *. float_of_int !safe /. float_of_int (max 1 !total) in
  if pct < 90.0 then
    Alcotest.failf "suite discharge %.1f%% below the 90%% bar (%d/%d)" pct
      !safe !total

(* ---------- suite replay: armed residue, no violations ---------- *)

let test_suite_validate () =
  List.iter
    (fun (app : Workloads.App.t) ->
       let dyn = Crat.Sanitize.validate app in
       match dyn.Crat.Sanitize.failures with
       | [] -> ()
       | fs ->
         Alcotest.failf "%s: %s" app.Workloads.App.abbr
           (String.concat "; " fs))
    Workloads.Suite.all

(* ---------- dynamic catch of the unprovable corpus store ---------- *)

let test_dynamic_catch () =
  let k =
    match
      List.find
        (fun (c : Verify.Corpus.case) -> c.Verify.Corpus.label = "unprovable")
        (Verify.Corpus.cases ())
    with
    | { Verify.Corpus.subject = Verify.Corpus.Kernel k; _ } -> k
    | _ -> Alcotest.fail "unprovable corpus case is not a kernel"
  in
  let report = San.sanitize_kernel ~block_size:64 k in
  let s403_pc =
    match
      List.find_opt (fun (d : D.t) -> d.D.code = "S403") report.San.diags
    with
    | Some { D.instr = Some pc; _ } -> pc
    | _ -> Alcotest.fail "no located S403 diagnostic on the corpus kernel"
  in
  let rt = Sancheck.runtime (San.mask report) in
  Gpusim.Refinterp.run ~sanitize:rt
    (Gpusim.Launch.make ~kernel:k ~block_size:64 ~num_blocks:1
       ~params:[ ("idx", Gpusim.Value.of_int 100) ]
       (Gpusim.Memory.create ()));
  let c = rt.Sancheck.counters in
  Alcotest.(check bool) "violations recorded" true (Sancheck.violations c > 0);
  match Sancheck.first_violation c with
  | None -> Alcotest.fail "no violation witness"
  | Some v ->
    Alcotest.(check int) "caught at the S403 pc" s403_pc v.Sancheck.v_pc;
    (* idx=100 words = byte offset 400, well past the 32B array *)
    Alcotest.(check int64) "witness offset" 400L v.Sancheck.v_addr

let () =
  Alcotest.run "sanitize"
    [ ( "clinic"
      , [ Alcotest.test_case "golden file" `Quick test_clinic_golden
        ; Alcotest.test_case "every S-code fires and is documented" `Quick
            test_clinic_all_codes
        ] )
    ; ( "suite"
      , [ Alcotest.test_case "zero S-errors at every stage, >=90% proven"
            `Slow test_suite_sweep
        ; Alcotest.test_case "sanitized replay sees no violation" `Slow
            test_suite_validate
        ] )
    ; ( "dynamic"
      , [ Alcotest.test_case "unprovable store caught at its pc" `Quick
            test_dynamic_catch
        ] )
    ]
