(* Tests for the CRAT framework: resource analysis, segmentation, OptTLP
   estimation, design-space pruning, the TPSC metric, micro-benchmarks
   and the end-to-end optimizer. Simulation-backed tests use small
   inputs to keep the suite fast. *)

let fermi = Gpusim.Config.fermi
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* one engine shared across the suite: simulations repeated between
   tests come from the content-addressed store *)
let engine = Crat.Engine.create ()

let small_app abbr =
  let a = Workloads.Suite.find abbr in
  let i = Workloads.App.default_input a in
  let small =
    { i with
      Workloads.App.num_blocks = 4
    ; iters = min 2 i.Workloads.App.iters
    ; passes = min 2 i.Workloads.App.passes
    ; ilabel = "test-small"
    }
  in
  { a with Workloads.App.inputs = [ small ] }

(* ---------- resource analysis ---------- *)

let test_resource_cfd () =
  let a = Workloads.Suite.find "CFD" in
  let r = Crat.Resource.analyze fermi a in
  check_int "MinReg is NumRegister/MaxThreads" 21 r.Crat.Resource.min_reg;
  check_int "BlockSize" 128 r.Crat.Resource.block_size;
  check_int "ShmSize" 0 r.Crat.Resource.shm_size;
  (* CFD's demand exceeds the hardware cap: MaxReg clamps to 63 *)
  check_int "MaxReg at cap" 63 r.Crat.Resource.max_reg;
  check "MaxTLP in range" true (r.Crat.Resource.max_tlp >= 1 && r.Crat.Resource.max_tlp <= 8)

let test_resource_maxreg_is_no_spill_point () =
  let a = Workloads.Suite.find "STM" in
  let r = Crat.Resource.analyze fermi a in
  let al =
    Regalloc.Allocator.allocate ~block_size:a.Workloads.App.block_size
      ~reg_limit:r.Crat.Resource.max_reg (Workloads.App.kernel a)
  in
  check "no spills at MaxReg" true (al.Regalloc.Allocator.spilled = []);
  if r.Crat.Resource.max_reg > r.Crat.Resource.min_reg then begin
    let below =
      Regalloc.Allocator.allocate ~block_size:a.Workloads.App.block_size
        ~reg_limit:(r.Crat.Resource.max_reg - 1) (Workloads.App.kernel a)
    in
    check "spills just below MaxReg" true (below.Regalloc.Allocator.spilled <> [])
  end

(* ---------- design space ---------- *)

let test_stairs_structure () =
  let a = Workloads.Suite.find "BLK" in
  let r = Crat.Resource.analyze fermi a in
  let stairs = Crat.Design_space.stairs fermi r in
  check "non-empty" true (stairs <> []);
  (* TLP strictly decreasing, registers non-decreasing *)
  let rec ordered = function
    | a :: (b : Crat.Design_space.point) :: rest ->
      a.Crat.Design_space.tlp > b.Crat.Design_space.tlp
      && a.Crat.Design_space.reg <= b.Crat.Design_space.reg
      && ordered (b :: rest)
    | _ -> true
  in
  check "staircase ordered" true (ordered stairs);
  (* every stair point is occupancy-feasible *)
  List.iter
    (fun (p : Crat.Design_space.point) ->
       let occ =
         Gpusim.Occupancy.max_tlp fermi
           (Crat.Resource.usage_at r ~regs:p.Crat.Design_space.reg)
       in
       check "feasible" true (occ >= p.Crat.Design_space.tlp))
    stairs

let test_prune_keeps_low_tlp () =
  let a = Workloads.Suite.find "BLK" in
  let r = Crat.Resource.analyze fermi a in
  let pruned = Crat.Design_space.prune fermi r ~opt_tlp:3 in
  check "non-empty after pruning" true (pruned <> []);
  List.iter
    (fun (p : Crat.Design_space.point) ->
       check "tlp within bound" true (p.Crat.Design_space.tlp <= 3))
    pruned

let test_full_contains_stairs () =
  let a = Workloads.Suite.find "KMN" in
  let r = Crat.Resource.analyze fermi a in
  let full = Crat.Design_space.full fermi r in
  let stairs = Crat.Design_space.stairs fermi r in
  List.iter
    (fun (p : Crat.Design_space.point) ->
       check "stair point in full space" true
         (List.exists
            (fun (q : Crat.Design_space.point) ->
               q.Crat.Design_space.reg = p.Crat.Design_space.reg
               && q.Crat.Design_space.tlp = p.Crat.Design_space.tlp)
            full))
    stairs

(* ---------- TPSC ---------- *)

let test_tlp_gain_decreasing () =
  let g t = Crat.Tpsc.tlp_gain fermi ~block_size:128 ~tlp:t in
  check "gain decreases with TLP" true (g 1 > g 4 && g 4 > g 8);
  check "gain in (0,1)" true (g 1 < 1.0 && g 8 > 0.0)

let test_tpsc_prefers_fewer_spills () =
  let costs = { Crat.Micro.cost_local = 30.; cost_shm = 5. } in
  let no_spill = { Regalloc.Spill.num_local = 0; num_shared = 0; num_other = 0; num_remat = 0 } in
  let spilled = { Regalloc.Spill.num_local = 10; num_shared = 0; num_other = 1; num_remat = 0 } in
  let t1 = Crat.Tpsc.tpsc fermi costs ~block_size:128 ~tlp:4 no_spill in
  let t2 = Crat.Tpsc.tpsc fermi costs ~block_size:128 ~tlp:4 spilled in
  check "no spill beats spill at same TLP" true (t1 < t2)

let test_tpsc_tlp_breaks_ties () =
  let costs = { Crat.Micro.cost_local = 30.; cost_shm = 5. } in
  let s = { Regalloc.Spill.num_local = 0; num_shared = 0; num_other = 0; num_remat = 0 } in
  let lo = Crat.Tpsc.tpsc fermi costs ~block_size:128 ~tlp:2 s in
  let hi = Crat.Tpsc.tpsc fermi costs ~block_size:128 ~tlp:6 s in
  check "higher TLP wins a spill-free tie" true (hi < lo)

let test_tpsc_shared_cheaper_than_local () =
  let costs = Crat.Micro.measure fermi in
  check "micro: local slower than shared" true
    (costs.Crat.Micro.cost_local >= costs.Crat.Micro.cost_shm);
  let local = { Regalloc.Spill.num_local = 10; num_shared = 0; num_other = 1; num_remat = 0 } in
  let shm = { Regalloc.Spill.num_local = 0; num_shared = 10; num_other = 1; num_remat = 0 } in
  check "TPSC prefers shared spills" true
    (Crat.Tpsc.tpsc fermi costs ~block_size:128 ~tlp:4 shm
     <= Crat.Tpsc.tpsc fermi costs ~block_size:128 ~tlp:4 local)

(* ---------- segments & static OptTLP ---------- *)

let test_segments_structure () =
  let a = small_app "CFD" in
  let tr = Crat.Segments.trace fermi a (Workloads.App.default_input a) in
  check "has segments" true (tr.Crat.Segments.segments <> []);
  check "has memory refs" true (tr.Crat.Segments.total_line_refs > 0);
  check "reuse in [0,1]" true
    (tr.Crat.Segments.reuse_ratio >= 0. && tr.Crat.Segments.reuse_ratio <= 1.);
  check "footprint positive" true (tr.Crat.Segments.footprint_bytes > 0);
  (* alternating structure: no two adjacent Mem segments collapse *)
  check "compute segments have positive latency" true
    (List.for_all
       (function
         | Crat.Segments.Compute c -> c > 0
         | Crat.Segments.Mem n -> n > 0)
       tr.Crat.Segments.segments)

let test_mimic_monotone_in_work () =
  let a = small_app "CFD" in
  let tr = Crat.Segments.trace fermi a (Workloads.App.default_input a) in
  let c1 = Crat.Opttlp.mimic_cycles fermi tr ~warps_per_block:4 ~tlp:1 in
  let c2 = Crat.Opttlp.mimic_cycles fermi tr ~warps_per_block:4 ~tlp:2 in
  check "more blocks, more total cycles" true (c2 >= c1);
  check "but less than double" true (c2 < 2. *. c1 +. 1.)

let test_static_estimate_in_range () =
  List.iter
    (fun abbr ->
       let a = small_app abbr in
       let est = Crat.Opttlp.estimate_static fermi a ~max_tlp:6 () in
       check (abbr ^ " estimate in range") true (est >= 1 && est <= 6))
    [ "CFD"; "KMN"; "GAU" ]

(* ---------- profiling & optimizer (simulation-backed, small) ---------- *)

let test_profile_finds_minimum () =
  let a = small_app "GAU" in
  let pr = Crat.Opttlp.profile engine fermi a ~max_tlp:4 () in
  check_int "all TLPs sampled" 4 (List.length pr.Crat.Opttlp.samples);
  let best_cycles =
    List.fold_left (fun acc (_, c) -> min acc c) max_int pr.Crat.Opttlp.samples
  in
  check "opt is the argmin" true
    (List.assoc pr.Crat.Opttlp.opt_tlp pr.Crat.Opttlp.samples = best_cycles)

let test_optimizer_plan_structure () =
  let a = small_app "KMN" in
  let plan = Crat.Optimizer.plan engine fermi a in
  check "candidates non-empty" true (plan.Crat.Optimizer.candidates <> []);
  check "chosen among candidates" true
    (List.exists
       (fun c -> c == plan.Crat.Optimizer.chosen)
       plan.Crat.Optimizer.candidates);
  check "chosen TLP within OptTLP" true
    (plan.Crat.Optimizer.chosen.Crat.Optimizer.point.Crat.Design_space.tlp
     <= plan.Crat.Optimizer.opt_tlp);
  check "chosen has minimal TPSC" true
    (List.for_all
       (fun c -> c.Crat.Optimizer.tpsc >= plan.Crat.Optimizer.chosen.Crat.Optimizer.tpsc)
       plan.Crat.Optimizer.candidates)

let test_baselines_consistent () =
  let a = small_app "KMN" in
  let m = Crat.Baselines.max_tlp engine fermi a () in
  let o = Crat.Baselines.opt_tlp engine fermi a () in
  check "OptTLP no slower than MaxTLP" true
    (Crat.Baselines.cycles o <= Crat.Baselines.cycles m);
  check "same register build" true (m.Crat.Baselines.reg = o.Crat.Baselines.reg);
  let c, plan = Crat.Baselines.crat engine fermi a () in
  check "CRAT no slower than OptTLP (small run)" true
    (float_of_int (Crat.Baselines.cycles c)
     <= 1.05 *. float_of_int (Crat.Baselines.cycles o));
  check "plan chose the evaluated point" true
    (c.Crat.Baselines.reg
     = plan.Crat.Optimizer.chosen.Crat.Optimizer.point.Crat.Design_space.reg)

let test_engine_cache_hits () =
  let e = Crat.Engine.create () in
  let a = small_app "GAU" in
  let _ = Crat.Baselines.opt_tlp e fermi a () in
  let r1 = Crat.Engine.report e in
  let _ = Crat.Baselines.opt_tlp e fermi a () in
  let r2 = Crat.Engine.report e in
  check_int "no new simulations on repeat" r1.Crat.Engine.sim_runs
    r2.Crat.Engine.sim_runs;
  check "cache hits recorded" true (r2.Crat.Engine.sim_hits > 0);
  check "allocations also cached" true
    (r2.Crat.Engine.alloc_runs = r1.Crat.Engine.alloc_runs
     && r2.Crat.Engine.alloc_hits > 0)

(* ---------- experiments plumbing ---------- *)

let test_fig7_structure () =
  let rows = Crat.Experiments.fig7 fermi Workloads.Suite.all in
  Alcotest.(check int) "one row per app" 22 (List.length rows);
  List.iter
    (fun (r : Crat.Experiments.fig7_row) ->
       check (r.Crat.Experiments.abbr ^ " utils in [0,1]") true
         (r.Crat.Experiments.reg_util7 >= 0.
          && r.Crat.Experiments.reg_util7 <= 1.01
          && r.Crat.Experiments.shm_util7 >= 0.
          && r.Crat.Experiments.shm_util7 <= 1.01))
    rows;
  (* the paper's observation: registers far better utilised than shared *)
  let avg f = List.fold_left (fun a r -> a +. f r) 0. rows /. 22. in
  check "registers much better utilised than shared" true
    (avg (fun r -> r.Crat.Experiments.reg_util7)
     > 3. *. avg (fun r -> r.Crat.Experiments.shm_util7))

let test_fig11_pruned_subset () =
  let a = small_app "KMN" in
  let stairs, pruned = Crat.Experiments.fig11 engine fermi a in
  check "pruned points are stair points (same reg cap per TLP)" true
    (List.for_all
       (fun (p : Crat.Design_space.point) ->
          List.exists
            (fun (q : Crat.Design_space.point) ->
               q.Crat.Design_space.reg >= p.Crat.Design_space.reg)
            stairs)
       pruned)

let test_mimic_zero_cases () =
  let tr =
    { Crat.Segments.segments = []
    ; total_line_refs = 0
    ; distinct_lines = 0
    ; footprint_bytes = 0
    ; reuse_ratio = 0.
    }
  in
  check "empty trace costs nothing" true
    (Crat.Opttlp.mimic_cycles fermi tr ~warps_per_block:4 ~tlp:2 = 0.)

let test_geomean () =
  check "geomean of 2 and 8 is 4" true
    (Float.abs (Crat.Experiments.geomean [ 2.; 8. ] -. 4.) < 1e-9);
  check "geomean of empty is 1" true (Crat.Experiments.geomean [] = 1.)

let test_fig6_monotone () =
  let a = Workloads.Suite.find "CFD" in
  let rows = Crat.Experiments.fig6 engine fermi a in
  check "rows exist" true (List.length rows > 5);
  let rec decreasing = function
    | (x : Crat.Experiments.fig6_row) :: y :: rest ->
      x.Crat.Experiments.instr_count >= y.Crat.Experiments.instr_count
      && x.Crat.Experiments.tlp6 >= y.Crat.Experiments.tlp6
      && decreasing (y :: rest)
    | _ -> true
  in
  check "instructions and TLP decrease with registers" true (decreasing rows)

let test_fig12_reference_tracks () =
  let a = Workloads.Suite.find "CFD" in
  let rows = Crat.Experiments.fig12 engine fermi a in
  check "rows exist" true (List.length rows > 5);
  List.iter
    (fun (r : Crat.Experiments.fig12_row) ->
       check "both allocators spill less with more registers" true
         (r.Crat.Experiments.bytes_crat >= 0 && r.Crat.Experiments.bytes_reference >= 0))
    rows;
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  check "CRAT spill bytes decrease over the sweep" true
    (first.Crat.Experiments.bytes_crat > last.Crat.Experiments.bytes_crat)

let test_energy_model () =
  let s = Gpusim.Stats.create () in
  s.Gpusim.Stats.cycles <- 1000;
  s.Gpusim.Stats.alu_instrs <- 100;
  s.Gpusim.Stats.thread_instrs <- 3200;
  let b = Energy.of_stats s in
  check "positive energy" true (Energy.total b > 0.);
  let s2 = Gpusim.Stats.create () in
  s2.Gpusim.Stats.cycles <- 2000;
  s2.Gpusim.Stats.alu_instrs <- 100;
  s2.Gpusim.Stats.thread_instrs <- 3200;
  check "longer run costs more leakage" true
    (Energy.total (Energy.of_stats s2) > Energy.total b)

let () =
  Alcotest.run "crat"
    [ ( "resource"
      , [ Alcotest.test_case "CFD analysis" `Quick test_resource_cfd
        ; Alcotest.test_case "MaxReg = no-spill point" `Quick
            test_resource_maxreg_is_no_spill_point
        ] )
    ; ( "design-space"
      , [ Alcotest.test_case "staircase structure" `Quick test_stairs_structure
        ; Alcotest.test_case "pruning keeps low TLP" `Quick test_prune_keeps_low_tlp
        ; Alcotest.test_case "full contains stairs" `Quick test_full_contains_stairs
        ] )
    ; ( "tpsc"
      , [ Alcotest.test_case "TLP gain decreasing" `Quick test_tlp_gain_decreasing
        ; Alcotest.test_case "prefers fewer spills" `Quick test_tpsc_prefers_fewer_spills
        ; Alcotest.test_case "TLP breaks ties" `Quick test_tpsc_tlp_breaks_ties
        ; Alcotest.test_case "shared cheaper than local" `Slow
            test_tpsc_shared_cheaper_than_local
        ] )
    ; ( "static-analysis"
      , [ Alcotest.test_case "segments" `Quick test_segments_structure
        ; Alcotest.test_case "mimic monotone" `Quick test_mimic_monotone_in_work
        ; Alcotest.test_case "estimates in range" `Quick test_static_estimate_in_range
        ] )
    ; ( "optimizer"
      , [ Alcotest.test_case "profile argmin" `Slow test_profile_finds_minimum
        ; Alcotest.test_case "plan structure" `Slow test_optimizer_plan_structure
        ; Alcotest.test_case "baselines consistent" `Slow test_baselines_consistent
        ; Alcotest.test_case "evaluation cache" `Slow test_engine_cache_hits
        ] )
    ; ( "experiments"
      , [ Alcotest.test_case "geomean" `Quick test_geomean
        ; Alcotest.test_case "fig6 monotone" `Quick test_fig6_monotone
        ; Alcotest.test_case "fig12 tracks" `Quick test_fig12_reference_tracks
        ; Alcotest.test_case "energy model" `Quick test_energy_model
        ; Alcotest.test_case "fig7 structure" `Quick test_fig7_structure
        ; Alcotest.test_case "fig11 pruned subset" `Slow test_fig11_pruned_subset
        ; Alcotest.test_case "mimic zero cases" `Quick test_mimic_zero_cases
        ] )
    ]
