(* Unit and property tests for the PTX IR: types, registers,
   instructions, kernels, the builder eDSL and the printer/parser
   round-trip. *)

module B = Ptx.Builder
module I = Ptx.Instr
module T = Ptx.Types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- types ---------- *)

let test_widths () =
  check_int "u32 width" 4 (T.width_bytes T.U32);
  check_int "f64 width" 8 (T.width_bytes T.F64);
  check_int "b8 width" 1 (T.width_bytes T.B8);
  check_int "u16 width" 2 (T.width_bytes T.U16)

let test_reg_classes () =
  Alcotest.(check bool) "pred class" true (T.reg_class T.Pred = T.Cpred);
  Alcotest.(check bool) "f32 is 32-bit" true (T.reg_class T.F32 = T.C32);
  Alcotest.(check bool) "u64 is 64-bit" true (T.reg_class T.U64 = T.C64);
  check_int "pred costs nothing" 0 (T.class_units T.Cpred);
  check_int "32-bit costs 1" 1 (T.class_units T.C32);
  check_int "64-bit costs 2" 2 (T.class_units T.C64)

let test_scalar_string_roundtrip () =
  List.iter
    (fun t ->
       match T.scalar_of_string (T.scalar_to_string t) with
       | Some t' -> check "scalar round trip" true (T.equal_scalar t t')
       | None -> Alcotest.failf "no parse for %s" (T.scalar_to_string t))
    T.all_scalars

(* ---------- registers ---------- *)

let test_reg_naming () =
  check_str "32-bit name" "%r5" (Ptx.Reg.name (Ptx.Reg.make 5 T.U32));
  check_str "f32 shares the 32-bit namespace" "%r5" (Ptx.Reg.name (Ptx.Reg.make 5 T.F32));
  check_str "64-bit name" "%d2" (Ptx.Reg.name (Ptx.Reg.make 2 T.U64));
  check_str "predicate name" "%p0" (Ptx.Reg.name (Ptx.Reg.make 0 T.Pred))

let test_special_roundtrip () =
  List.iter
    (fun s ->
       match Ptx.Reg.special_of_string (Ptx.Reg.special_to_string s) with
       | Some s' -> check "special round trip" true (Ptx.Reg.equal_special s s')
       | None -> Alcotest.fail "special parse")
    [ Ptx.Reg.Tid_x; Ptx.Reg.Ctaid_x; Ptx.Reg.Ntid_x; Ptx.Reg.Nctaid_x
    ; Ptx.Reg.Laneid; Ptx.Reg.Warpid ]

(* ---------- instructions ---------- *)

let r n ty = Ptx.Reg.make n ty

let test_defs_uses () =
  let add = I.Binop (I.Add, T.U32, r 0 T.U32, I.Oreg (r 1 T.U32), I.Oreg (r 2 T.U32)) in
  check_int "binop defs" 1 (List.length (I.defs add));
  check_int "binop uses" 2 (List.length (I.uses add));
  let st =
    I.St (T.Global, T.F32, { I.base = I.Oreg (r 3 T.U64); offset = 4 }, I.Oreg (r 4 T.F32))
  in
  check_int "store defs" 0 (List.length (I.defs st));
  check_int "store uses addr+value" 2 (List.length (I.uses st));
  let bra = I.Bra_pred (r 5 T.Pred, true, "L") in
  check "branch uses its predicate" true
    (List.exists (Ptx.Reg.equal (r 5 T.Pred)) (I.uses bra))

let test_control_properties () =
  check "bra is control" true (I.is_control (I.Bra "L"));
  check "bra does not fall through" false (I.falls_through (I.Bra "L"));
  check "conditional falls through" true
    (I.falls_through (I.Bra_pred (r 0 T.Pred, true, "L")));
  check "ret does not fall through" false (I.falls_through I.Ret);
  check "barrier is not control" false (I.is_control I.Bar_sync);
  Alcotest.(check (option string))
    "branch target" (Some "L")
    (I.branch_target (I.Bra "L"))

let test_map_def_vs_map_regs () =
  (* add %r0, %r0, 1 : map_def must only touch the destination *)
  let i = I.Binop (I.Add, T.U32, r 0 T.U32, I.Oreg (r 0 T.U32), I.Oimm 1L) in
  let renamed = I.map_def (fun _ -> r 9 T.U32) i in
  (match renamed with
   | I.Binop (I.Add, T.U32, d, I.Oreg u, I.Oimm 1L) ->
     check_int "def renamed" 9 (Ptx.Reg.id d);
     check_int "use untouched" 0 (Ptx.Reg.id u)
   | _ -> Alcotest.fail "unexpected shape");
  let all = I.map_regs (fun _ -> r 9 T.U32) i in
  match all with
  | I.Binop (I.Add, T.U32, d, I.Oreg u, I.Oimm 1L) ->
    check_int "map_regs def" 9 (Ptx.Reg.id d);
    check_int "map_regs use" 9 (Ptx.Reg.id u)
  | _ -> Alcotest.fail "unexpected shape"

let test_classify () =
  check "div is heavy" true
    (I.classify (I.Binop (I.Div, T.U32, r 0 T.U32, I.Oimm 1L, I.Oimm 1L)) = I.Alu_heavy);
  check "sqrt is sfu" true
    (I.classify (I.Unop (I.Sqrt, T.F32, r 0 T.F32, I.Ofimm 1.)) = I.Sfu);
  check "global load" true
    (I.classify (I.Ld (T.Global, T.F32, r 0 T.F32, { I.base = I.Oimm 0L; offset = 0 }))
     = I.Mem_global);
  check "local store" true
    (I.classify (I.St (T.Local, T.U32, { I.base = I.Oimm 0L; offset = 0 }, I.Oimm 0L))
     = I.Mem_local)

(* ---------- kernels & validation ---------- *)

let trivial_kernel () =
  let b = B.create "k" in
  let out = B.param b "out" T.U64 in
  let tid = B.global_tid_x b in
  let base = B.ld_param b T.U64 out in
  let bytes = B.mul b T.U32 (B.reg tid) (B.imm 4) in
  let o = B.cvt b T.U64 T.U32 (B.reg bytes) in
  let addr = B.add b T.U64 (B.reg base) (B.reg o) in
  B.st b T.Global T.U32 (B.reg addr) 0 (B.reg tid);
  B.finish b

let test_kernel_accessors () =
  let k = trivial_kernel () in
  check "validates" true (Result.is_ok (Ptx.Kernel.validate k));
  check_int "no shared" 0 (Ptx.Kernel.shared_bytes k);
  check_int "no local" 0 (Ptx.Kernel.local_bytes k);
  check "has instructions" true (Ptx.Kernel.instr_count k > 5);
  check "register demand positive" true (Ptx.Kernel.register_demand k > 3);
  check "fresh base above all ids" true
    (Ptx.Reg.Set.for_all
       (fun reg -> Ptx.Reg.id reg < Ptx.Kernel.fresh_reg_base k)
       (Ptx.Kernel.registers k))

let test_validate_rejects_unknown_label () =
  let k = trivial_kernel () in
  let bad = { k with Ptx.Kernel.body = Array.append k.Ptx.Kernel.body [| Ptx.Kernel.I (I.Bra "nowhere") |] } in
  check "unknown label rejected" true (Result.is_error (Ptx.Kernel.validate bad))

let test_validate_rejects_type_mismatch () =
  let k = trivial_kernel () in
  (* mov.u64 into a 32-bit register *)
  let bad_instr = I.Mov (T.U64, r 0 T.U32, I.Oimm 0L) in
  let bad = { k with Ptx.Kernel.body = Array.append [| Ptx.Kernel.I bad_instr |] k.Ptx.Kernel.body } in
  check "width mismatch rejected" true (Result.is_error (Ptx.Kernel.validate bad))

let test_validate_rejects_bad_setp () =
  let k = trivial_kernel () in
  let bad_instr = I.Setp (I.Lt, T.U32, r 0 T.U32, I.Oimm 0L, I.Oimm 1L) in
  let bad = { k with Ptx.Kernel.body = Array.append [| Ptx.Kernel.I bad_instr |] k.Ptx.Kernel.body } in
  check "setp into non-predicate rejected" true (Result.is_error (Ptx.Kernel.validate bad))

let test_validate_rejects_duplicate_label () =
  let k = trivial_kernel () in
  let bad =
    { k with
      Ptx.Kernel.body =
        Array.append [| Ptx.Kernel.L "X"; Ptx.Kernel.L "X" |] k.Ptx.Kernel.body
    }
  in
  check "duplicate label rejected" true (Result.is_error (Ptx.Kernel.validate bad))

let test_validate_rejects_undeclared_symbol () =
  let b = B.create "k" in
  let _ = B.param b "out" T.U64 in
  B.emit b (I.St (T.Shared, T.U32, { I.base = I.Osym "ghost"; offset = 0 }, I.Oimm 0L));
  (try
     let _ = B.finish b in
     Alcotest.fail "undeclared symbol accepted"
   with Invalid_argument _ -> ())

(* ---------- builder ---------- *)

let test_builder_loop_shape () =
  let b = B.create "loop" in
  let _ = B.param b "out" T.U64 in
  B.for_loop b ~from:(B.imm 0) ~below:(B.imm 10) ~step:2 (fun i ->
    ignore (B.add b T.U32 (B.reg i) (B.imm 1)));
  let k = B.finish b in
  let labels = Ptx.Kernel.labels k in
  check_int "head and exit labels" 2 (List.length labels);
  (* one conditional branch out, one back edge *)
  let instrs = Ptx.Kernel.instrs k in
  check_int "one conditional branch" 1
    (List.length
       (List.filter
          (fun i ->
             match i with
             | I.Bra_pred _ -> true
             | _ -> false)
          instrs));
  check_int "one back edge" 1
    (List.length
       (List.filter
          (fun i ->
             match i with
             | I.Bra _ -> true
             | _ -> false)
          instrs))

let test_builder_appends_ret () =
  let b = B.create "noret" in
  let _ = B.param b "out" T.U64 in
  ignore (B.mov b T.U32 (B.imm 1));
  let k = B.finish b in
  match k.Ptx.Kernel.body.(Array.length k.Ptx.Kernel.body - 1) with
  | Ptx.Kernel.I I.Ret -> ()
  | _ -> Alcotest.fail "finish must append ret"

let test_builder_fresh_distinct () =
  let b = B.create "fresh" in
  let r1 = B.fresh b T.U32 in
  let r2 = B.fresh b T.F32 in
  let r3 = B.fresh b T.U64 in
  check "distinct ids" true
    (Ptx.Reg.id r1 <> Ptx.Reg.id r2 && Ptx.Reg.id r2 <> Ptx.Reg.id r3)

(* ---------- printer / parser ---------- *)

let test_paper_listing_roundtrip () =
  (* the paper's Listing 2 (native PTX kernel), adapted to our syntax *)
  let src =
    {|.entry kernel (
  .param .u64 output
)
{
  .reg .u32 %r0, %r1, %r2, %r3, %r4;
  mov.u32 %r0, %tid.x;
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mul.lo.u32 %r3, %r2, %r1;
  add.u32 %r4, %r0, %r3;
  ret;
}|}
  in
  let k = Ptx.Parser.parse_kernel_exn src in
  check_int "five instructions + ret" 6 (Ptx.Kernel.instr_count k);
  check_str "kernel name" "kernel" k.Ptx.Kernel.name;
  let printed = Ptx.Printer.kernel_to_string k in
  let k2 = Ptx.Parser.parse_kernel_exn printed in
  check_str "print-parse fixpoint" printed (Ptx.Printer.kernel_to_string k2)

let test_spill_listing_roundtrip () =
  (* the paper's Listing 4 shape: local spill stack + addressing register *)
  let src =
    {|.entry kernel (
  .param .u64 output
)
{
  .local .align 4 .b8 SpillStack[4];
  .reg .u64 %d0;
  .reg .u32 %r0, %r1;
  mov.u32 %r0, %tid.x;
  mov.u32 %r1, %ctaid.x;
  mov.u64 %d0, SpillStack;
  st.local.u32 [%d0], %r0;
  mov.u32 %r0, %ntid.x;
  mul.lo.u32 %r1, %r1, %r0;
  ld.local.u32 %r1, [%d0];
  add.u32 %r0, %r0, %r1;
  ret;
}|}
  in
  let k = Ptx.Parser.parse_kernel_exn src in
  check_int "local stack bytes" 4 (Ptx.Kernel.local_bytes k);
  let printed = Ptx.Printer.kernel_to_string k in
  check "reparses" true (Result.is_ok (Ptx.Parser.parse_kernel printed))

let test_parser_rejects_garbage () =
  check "garbage" true (Result.is_error (Ptx.Parser.parse_kernel "not ptx at all"));
  check "missing brace" true
    (Result.is_error (Ptx.Parser.parse_kernel ".entry k ( ) { mov.u32 %r0, 1;"));
  check "unknown opcode" true
    (Result.is_error
       (Ptx.Parser.parse_kernel
          ".entry k ( ) { .reg .u32 %r0; frobnicate.u32 %r0, 1; }"))

let test_address_offset_roundtrip () =
  let src =
    {|.entry k (
  .param .u64 p
)
{
  .reg .u64 %d0;
  .reg .u32 %r0;
  ld.param.u64 %d0, [p];
  ld.global.u32 %r0, [%d0+12];
  st.global.u32 [%d0+8], %r0;
  ret;
}|}
  in
  let k = Ptx.Parser.parse_kernel_exn src in
  let offsets =
    List.filter_map
      (fun i ->
         match i with
         | I.Ld (T.Global, _, _, a) | I.St (T.Global, _, a, _) -> Some a.I.offset
         | _ -> None)
      (Ptx.Kernel.instrs k)
  in
  Alcotest.(check (list int)) "offsets" [ 12; 8 ] offsets

let test_printer_idempotent () =
  let k = Workloads.App.kernel (Workloads.Suite.find "FDTD") in
  let s1 = Ptx.Printer.kernel_to_string k in
  let s2 = Ptx.Printer.kernel_to_string (Ptx.Parser.parse_kernel_exn s1) in
  let s3 = Ptx.Printer.kernel_to_string (Ptx.Parser.parse_kernel_exn s2) in
  check_str "printing is a fixpoint" s2 s3

let test_negative_and_float_immediates () =
  let src =
    {|.entry k (
  .param .u64 out
)
{
  .reg .u32 %r0;
  .reg .f32 %r1, %r2;
  add.u32 %r0, %r0, -5;
  mov.f32 %r1, 2.5;
  mad.lo.f32 %r2, %r1, 1.5e-3, 0.125;
  ret;
}|}
  in
  let k = Ptx.Parser.parse_kernel_exn src in
  let found_neg = ref false and found_exp = ref false in
  List.iter
    (fun i ->
       match i with
       | I.Binop (I.Add, T.U32, _, _, I.Oimm v) when Int64.equal v (-5L) ->
         found_neg := true
       | I.Mad (T.F32, _, _, I.Ofimm f, _) when abs_float (f -. 1.5e-3) < 1e-12 ->
         found_exp := true
       | _ -> ())
    (Ptx.Kernel.instrs k);
  check "negative immediate parsed" true !found_neg;
  check "exponent float parsed" true !found_exp

let test_multi_decl_roundtrip () =
  let b = B.create "decls" in
  let _ = B.param b "out" T.U64 in
  let _ = B.decl_shared b "tile" T.F32 64 in
  let _ = B.decl_shared b "flags" T.U32 16 in
  let _ = B.decl_local b "scratch" T.F64 4 in
  ignore (B.mov b T.U32 (B.imm 0));
  let k = B.finish b in
  let s = Ptx.Printer.kernel_to_string k in
  let k2 = Ptx.Parser.parse_kernel_exn s in
  check_int "shared bytes survive" (Ptx.Kernel.shared_bytes k) (Ptx.Kernel.shared_bytes k2);
  check_int "local bytes survive" (Ptx.Kernel.local_bytes k) (Ptx.Kernel.local_bytes k2);
  check_int "three declarations" 3 (List.length k2.Ptx.Kernel.decls)

let test_parser_comments_and_crlf () =
  let src =
    ".entry k ( // params follow
  .param .u64 out
)
{
  // a comment line
  .reg .u32 %r0;
  mov.u32 %r0, 3; // trailing comment
  ret;
}"
  in
  let k = Ptx.Parser.parse_kernel_exn src in
  check_int "two instructions" 2 (Ptx.Kernel.instr_count k)

let test_selp_pred_roundtrip () =
  let b = B.create "selp" in
  let out = B.param b "out" T.U64 in
  let tid = B.special b Ptx.Reg.Tid_x in
  let p = B.setp b I.Ge T.U32 (B.reg tid) (B.imm 16) in
  let a = B.mov b T.F32 (B.fimm 1.25) in
  let c = B.mov b T.F32 (B.fimm 2.5) in
  let v = B.selp b T.F32 (B.reg a) (B.reg c) p in
  let base = B.ld_param b T.U64 out in
  B.st b T.Global T.F32 (B.reg base) 0 (B.reg v);
  let k = B.finish b in
  let s = Ptx.Printer.kernel_to_string k in
  let k2 = Ptx.Parser.parse_kernel_exn s in
  check_str "selp/setp round-trip" s (Ptx.Printer.kernel_to_string k2)

(* qcheck: print/parse round-trip over random kernels *)
let prop_roundtrip =
  QCheck.Test.make ~count:60 ~name:"printer/parser round-trip"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let s = Ptx.Printer.kernel_to_string k in
      let k2 = Ptx.Parser.parse_kernel_exn s in
      String.equal s (Ptx.Printer.kernel_to_string k2))

(* the static verifier (lib/verify) agrees across the text round-trip:
   whenever a kernel verifies clean, the reparse of its printing must
   too — any ill-typedness introduced by the printer or parser would
   surface as a fresh error diagnostic here *)
let prop_roundtrip_verifies_clean =
  QCheck.Test.make ~count:60
    ~name:"round-tripped kernels verify as clean as the source"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let clean k = Verify.Diagnostic.errors (Verify.Checker.check_kernel k) = [] in
      (not (clean k))
      || clean (Ptx.Parser.parse_kernel_exn (Ptx.Printer.kernel_to_string k)))

let prop_generated_valid =
  QCheck.Test.make ~count:60 ~name:"generated kernels validate"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      Result.is_ok (Ptx.Kernel.validate k))

let prop_defs_subset_registers =
  QCheck.Test.make ~count:40 ~name:"defs/uses within kernel register set"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let all = Ptx.Kernel.registers k in
      List.for_all
        (fun i ->
           List.for_all (fun reg -> Ptx.Reg.Set.mem reg all) (I.defs i)
           && List.for_all (fun reg -> Ptx.Reg.Set.mem reg all) (I.uses i))
        (Ptx.Kernel.instrs k))

let () =
  Alcotest.run "ptx"
    [ ( "types"
      , [ Alcotest.test_case "widths" `Quick test_widths
        ; Alcotest.test_case "register classes" `Quick test_reg_classes
        ; Alcotest.test_case "scalar string round-trip" `Quick test_scalar_string_roundtrip
        ] )
    ; ( "registers"
      , [ Alcotest.test_case "naming" `Quick test_reg_naming
        ; Alcotest.test_case "special round-trip" `Quick test_special_roundtrip
        ] )
    ; ( "instructions"
      , [ Alcotest.test_case "defs and uses" `Quick test_defs_uses
        ; Alcotest.test_case "control properties" `Quick test_control_properties
        ; Alcotest.test_case "map_def vs map_regs" `Quick test_map_def_vs_map_regs
        ; Alcotest.test_case "latency classes" `Quick test_classify
        ] )
    ; ( "kernels"
      , [ Alcotest.test_case "accessors" `Quick test_kernel_accessors
        ; Alcotest.test_case "rejects unknown label" `Quick test_validate_rejects_unknown_label
        ; Alcotest.test_case "rejects type mismatch" `Quick test_validate_rejects_type_mismatch
        ; Alcotest.test_case "rejects bad setp" `Quick test_validate_rejects_bad_setp
        ; Alcotest.test_case "rejects duplicate label" `Quick test_validate_rejects_duplicate_label
        ; Alcotest.test_case "rejects undeclared symbol" `Quick test_validate_rejects_undeclared_symbol
        ] )
    ; ( "builder"
      , [ Alcotest.test_case "loop shape" `Quick test_builder_loop_shape
        ; Alcotest.test_case "appends ret" `Quick test_builder_appends_ret
        ; Alcotest.test_case "fresh registers distinct" `Quick test_builder_fresh_distinct
        ] )
    ; ( "text"
      , [ Alcotest.test_case "paper listing 2" `Quick test_paper_listing_roundtrip
        ; Alcotest.test_case "paper listing 4 (spills)" `Quick test_spill_listing_roundtrip
        ; Alcotest.test_case "rejects garbage" `Quick test_parser_rejects_garbage
        ; Alcotest.test_case "address offsets" `Quick test_address_offset_roundtrip
        ; Alcotest.test_case "printer idempotent" `Quick test_printer_idempotent
        ; Alcotest.test_case "negative/float immediates" `Quick
            test_negative_and_float_immediates
        ; Alcotest.test_case "multiple declarations" `Quick test_multi_decl_roundtrip
        ; Alcotest.test_case "comments and CRLF" `Quick test_parser_comments_and_crlf
        ; Alcotest.test_case "selp/setp round-trip" `Quick test_selp_pred_roundtrip
        ] )
    ; ( "properties"
      , List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip
          ; prop_roundtrip_verifies_clean
          ; prop_generated_valid
          ; prop_defs_subset_registers
          ] )
    ]
