(* Tests for the machine backend: lowering every workload to the
   SASS-like ISA under split vector/scalar budgets, the independent
   per-class audit, encode/decode, the scalarization payoff, and the
   differential check that machine-ISA execution matches the PTX
   reference interpreter. *)

module A = Regalloc.Allocator

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let scalar_limit = Machine.Backend.default_scalar_limit

(* Machine-backend allocation: warp-uniform registers proven by the
   scalarizer go to the per-warp scalar file. *)
let allocate_machine ?(reg_limit = 64) (a : Workloads.App.t) =
  let k = Workloads.App.kernel a in
  A.allocate
    ~scalar:(Machine.Scalarize.predicate ~block_size:a.Workloads.App.block_size k)
    ~scalar_limit
    ~block_size:a.Workloads.App.block_size ~reg_limit k

let fail_diags abbr diags =
  Alcotest.failf "%s: %s" abbr
    (String.concat "; "
       (List.map (fun d -> Fmt.str "%a" Verify.Diagnostic.pp d) diags))

(* Acceptance sweep: all 22 workloads lower, allocate under the split
   budgets and pass the independent machine auditor clean. *)
let test_sweep_lowers_clean () =
  List.iter
    (fun (a : Workloads.App.t) ->
       let alloc = allocate_machine a in
       let m = Machine.Lower.run alloc in
       (match Verify.Machine_audit.check m with
        | [] -> ()
        | diags -> fail_diags a.Workloads.App.abbr diags);
       check (a.Workloads.App.abbr ^ ": vector span within budget") true
         (m.Machine.Lower.vector_units <= 64 * 2);
       check (a.Workloads.App.abbr ^ ": scalar span within budget") true
         (m.Machine.Lower.scalar_units <= scalar_limit);
       check_int
         (a.Workloads.App.abbr ^ ": one 256-bit word group per insn")
         (4 * Array.length m.Machine.Lower.code)
         (Array.length m.Machine.Lower.encoded))
    Workloads.Suite.all

(* Spill code (local ld/st, spill temporaries) must lower and audit
   clean too: force spills with a tight vector budget. *)
let test_tight_limit_lowers_clean () =
  List.iter
    (fun abbr ->
       let a = Workloads.Suite.find abbr in
       let alloc = allocate_machine ~reg_limit:18 a in
       check (abbr ^ ": tight limit spills") true (alloc.A.spilled <> []);
       let m = Machine.Lower.run alloc in
       match Verify.Machine_audit.check m with
       | [] -> ()
       | diags -> fail_diags abbr diags)
    [ "CFD"; "FDTD"; "LBM" ]

(* A PTX-backend allocation (scalar file disabled) lowers to a program
   with an empty scalar file. *)
let test_ptx_allocation_lowers () =
  let a = Workloads.Suite.find "BLK" in
  let k = Workloads.App.kernel a in
  let alloc =
    A.allocate ~block_size:a.Workloads.App.block_size ~reg_limit:64 k
  in
  let m = Machine.Lower.run alloc in
  (match Verify.Machine_audit.check m with
   | [] -> ()
   | diags -> fail_diags "BLK/ptx" diags);
  check_int "no scalar units" 0 m.Machine.Lower.scalar_units;
  check "no scalarized registers" true (alloc.A.scalarized = 0)

let test_encode_roundtrip () =
  let a = Workloads.Suite.find "CFD" in
  let m = Machine.Lower.run (allocate_machine a) in
  let decoded = Machine.Encode.decode_program m.Machine.Lower.encoded in
  check "decode_program inverts encode_program" true
    (decoded = m.Machine.Lower.code);
  Array.iter
    (fun insn ->
       check "decode inverts encode per insn" true
         (Machine.Encode.decode (Machine.Encode.encode insn) = insn))
    m.Machine.Lower.code

(* The scalarization payoff on uniform-heavy workloads: the spill-free
   vector limit drops by at least one register, the scalar footprint is
   real, and occupancy at the respective spill-free points does not
   regress (strictly improves for KMN, where vector registers bind). *)
let test_scalarization_frees_registers () =
  let cfg = Gpusim.Config.fermi in
  let tlp_gain = ref false in
  List.iter
    (fun abbr ->
       let a = Workloads.Suite.find abbr in
       let rp = Crat.Resource.analyze cfg a in
       let rm = Crat.Resource.analyze ~backend:Machine.Backend.Machine cfg a in
       check (abbr ^ ": machine MaxReg below ptx MaxReg") true
         (rm.Crat.Resource.max_reg < rp.Crat.Resource.max_reg);
       check (abbr ^ ": scalar footprint present") true
         (rm.Crat.Resource.sregs_per_warp > 0);
       let tlp_at (r : Crat.Resource.t) =
         Gpusim.Occupancy.max_tlp cfg
           (Crat.Resource.usage_at r ~regs:r.Crat.Resource.max_reg)
       in
       let tp = tlp_at rp and tm = tlp_at rm in
       check (abbr ^ ": occupancy no worse at spill-free limit") true (tm >= tp);
       if tm > tp then tlp_gain := true)
    [ "KMN"; "BFS" ];
  check "occupancy strictly improves on a uniform-heavy workload" true
    !tlp_gain

(* Differential testing on the real workloads: the allocated PTX kernel
   under Refinterp and its machine lowering under Exec must produce the
   same memory image from identical launches. *)
let tiny_input (a : Workloads.App.t) =
  let i = Workloads.App.default_input a in
  { i with
    Workloads.App.num_blocks = 2
  ; iters = min 2 i.Workloads.App.iters
  ; passes = min 2 i.Workloads.App.passes
  }

let test_workload_differential () =
  List.iter
    (fun abbr ->
       let a = Workloads.Suite.find abbr in
       let alloc = allocate_machine a in
       let m = Machine.Lower.run alloc in
       let input = tiny_input a in
       let launch () =
         Workloads.App.launch a ~kernel:alloc.A.kernel ~input ()
       in
       let lref = launch () and lmach = launch () in
       Gpusim.Refinterp.run lref;
       Machine.Exec.run m lmach;
       check (abbr ^ ": machine execution matches Refinterp") true
         (Gpusim.Memory.equal lref.Gpusim.Launch.memory
            lmach.Gpusim.Launch.memory))
    [ "BLK"; "KMN"; "BFS"; "HST"; "GAU" ]

(* Differential testing on random kernels (the acceptance criterion):
   scalar registers hold one value per warp in Exec, so any unsound
   scalarization decision diverges from the per-lane reference. *)
let differential_random =
  QCheck.Test.make ~count:60 ~name:"machine Exec matches Refinterp"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let block_size = 64 in
      let alloc =
        A.allocate
          ~scalar:(Machine.Scalarize.predicate ~block_size k)
          ~scalar_limit ~block_size ~reg_limit:24 k
      in
      let m = Machine.Lower.run alloc in
      (match Verify.Machine_audit.check m with
       | [] -> ()
       | d :: _ ->
         QCheck.Test.fail_reportf "audit: %s" (Fmt.str "%a" Verify.Diagnostic.pp d));
      let run f =
        let mem = Gpusim.Memory.create () in
        Gpusim.Memory.write_f32_array mem ~base:0x1000_0000L
          (Workloads.Data.uniform_f32 ~seed:5 1024);
        let launch =
          Gpusim.Launch.make ~kernel:alloc.A.kernel ~block_size ~num_blocks:2
            ~params:
              [ ("inp", Gpusim.Value.I 0x1000_0000L)
              ; ("out", Gpusim.Value.I 0x2000_0000L)
              ; ("n", Gpusim.Value.of_int 1024)
              ]
            mem
        in
        f launch;
        mem
      in
      Gpusim.Memory.equal (run Gpusim.Refinterp.run) (run (Machine.Exec.run m)))

(* Random kernels also all pass the auditor at a tight, spill-inducing
   limit. *)
let lowering_audits_clean_random =
  QCheck.Test.make ~count:60 ~name:"random kernels lower and audit clean"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let block_size = 64 in
      let alloc =
        A.allocate
          ~scalar:(Machine.Scalarize.predicate ~block_size k)
          ~scalar_limit ~block_size ~reg_limit:12 k
      in
      Verify.Machine_audit.check (Machine.Lower.run alloc) = [])

let () =
  Alcotest.run "machine"
    [ ( "lowering"
      , [ Alcotest.test_case "all 22 workloads lower and audit clean" `Quick
            test_sweep_lowers_clean
        ; Alcotest.test_case "spill code lowers clean at a tight limit" `Quick
            test_tight_limit_lowers_clean
        ; Alcotest.test_case "ptx allocation lowers with empty scalar file"
            `Quick test_ptx_allocation_lowers
        ; Alcotest.test_case "encode/decode roundtrip" `Quick
            test_encode_roundtrip
        ; QCheck_alcotest.to_alcotest lowering_audits_clean_random
        ] )
    ; ( "scalarization"
      , [ Alcotest.test_case "frees vector registers and occupancy" `Quick
            test_scalarization_frees_registers
        ] )
    ; ( "execution"
      , [ Alcotest.test_case "workload differential vs Refinterp" `Quick
            test_workload_differential
        ; QCheck_alcotest.to_alcotest differential_random
        ] )
    ]
