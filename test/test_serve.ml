(* End-to-end tests for the crat daemon: wire framing, a live daemon
   serving concurrent clients in-process, session dedup, server-side
   sweeps, and warm restart from the persistent store. *)

let check = Alcotest.(check bool)

let temp_dir prefix =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.int 100000))
  in
  Unix.mkdir d 0o755;
  d

(* ---------- framing ---------- *)

let test_framing_roundtrip () =
  let path = Filename.temp_file "frame" ".bin" in
  let requests =
    [ Serve.Protocol.Simulate
        [ Serve.Protocol.point "BFS"
        ; Serve.Protocol.point ~regs:(Some 12) ~tlp:(Some 3) ~kepler:true "KMN"
        ]
    ; Serve.Protocol.Sweep { kind = "verify"; apps = [ "BFS" ] }
    ; Serve.Protocol.Stats
    ; Serve.Protocol.Shutdown
    ]
  in
  Out_channel.with_open_bin path (fun oc ->
    List.iter (Serve.Protocol.write_request oc) requests);
  In_channel.with_open_bin path (fun ic ->
    List.iter
      (fun expected ->
         check "frame round-trips" true
           (Serve.Protocol.read_request ic = expected))
      requests);
  Sys.remove path

let test_framing_rejects_garbage () =
  let path = Filename.temp_file "frame" ".bin" in
  Out_channel.with_open_bin path (fun oc ->
    (* a plausible length prefix followed by non-marshal bytes *)
    output_binary_int oc 16;
    output_string oc "not a marshalled");
  let rejected =
    In_channel.with_open_bin path (fun ic ->
      match (Serve.Protocol.read_request ic : Serve.Protocol.request) with
      | _ -> false
      | exception Serve.Protocol.Protocol_error _ -> true)
  in
  check "garbage frame rejected" true rejected;
  Sys.remove path

(* ---------- live daemon ---------- *)

(* Run the daemon on a thread inside the test process; return the
   socket path and a join function. *)
let spawn_daemon ?store_dir ?sweep dir name =
  let socket = Filename.concat dir (name ^ ".sock") in
  let th =
    Thread.create
      (fun () -> Serve.Daemon.run ~socket ?store_dir ?sweep ())
      ()
  in
  (socket, fun () -> Thread.join th)

let with_client socket f =
  match Serve.Client.connect_retry ~socket () with
  | Error e -> Alcotest.fail ("connect failed: " ^ e)
  | Ok c -> Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let shutdown_daemon socket join =
  with_client socket (fun c ->
    match Serve.Client.shutdown c with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("shutdown failed: " ^ e));
  join ()

let test_simulate_and_dedup () =
  let dir = temp_dir "serve-e2e" in
  let socket, join = spawn_daemon dir "d" in
  Fun.protect ~finally:(fun () -> ()) @@ fun () ->
  let points =
    [ Serve.Protocol.point "BFS"; Serve.Protocol.point "GAU" ]
  in
  let first =
    with_client socket (fun c ->
      match Serve.Client.simulate c points with
      | Error e -> Alcotest.fail e
      | Ok stats -> stats)
  in
  check "two results" true (Array.length first = 2);
  check "results distinct" true (first.(0) <> first.(1));
  (* a second client asking the same points must be answered from the
     session cache: no new simulations *)
  let second, stats =
    with_client socket (fun c ->
      let s =
        match Serve.Client.simulate c points with
        | Error e -> Alcotest.fail e
        | Ok stats -> stats
      in
      let st =
        match Serve.Client.server_stats c with
        | Error e -> Alcotest.fail e
        | Ok st -> st
      in
      (s, st))
  in
  check "identical answers across clients" true (first = second);
  check "no extra simulations for the repeat" true
    (stats.Serve.Protocol.sim_runs = 2);
  check "all four points counted" true (stats.Serve.Protocol.points = 4);
  (* unknown app: a protocol error, and the connection survives it *)
  with_client socket (fun c ->
    (match Serve.Client.simulate c [ Serve.Protocol.point "NOPE" ] with
     | Ok _ -> Alcotest.fail "unknown app accepted"
     | Error _ -> ());
    match Serve.Client.simulate c [ Serve.Protocol.point "BFS" ] with
    | Ok stats -> check "connection usable after error" true (stats.(0) = first.(0))
    | Error e -> Alcotest.fail ("connection died after bad request: " ^ e));
  shutdown_daemon socket join;
  check "socket removed on shutdown" false (Sys.file_exists socket)

let test_warm_restart_from_store () =
  let dir = temp_dir "serve-warm" in
  let store_dir = Filename.concat dir "store" in
  let points = [ Serve.Protocol.point "BFS" ] in
  let cold =
    let socket, join = spawn_daemon ~store_dir dir "cold" in
    let stats =
      with_client socket (fun c ->
        match Serve.Client.simulate c points with
        | Error e -> Alcotest.fail e
        | Ok s -> s)
    in
    shutdown_daemon socket join;
    stats
  in
  (* fresh daemon, same store: must answer without simulating *)
  let socket, join = spawn_daemon ~store_dir dir "warm" in
  let warm, stats =
    with_client socket (fun c ->
      let s =
        match Serve.Client.simulate c points with
        | Error e -> Alcotest.fail e
        | Ok s -> s
      in
      let st =
        match Serve.Client.server_stats c with
        | Error e -> Alcotest.fail e
        | Ok st -> st
      in
      (s, st))
  in
  check "warm run simulated nothing" true (stats.Serve.Protocol.sim_runs = 0);
  check "warm hit rate 1.0" true (Serve.Protocol.hit_rate stats = 1.0);
  check "warm answer bit-identical to cold" true
    (Marshal.to_string cold [] = Marshal.to_string warm []);
  shutdown_daemon socket join

let test_server_side_sweep () =
  let dir = temp_dir "serve-sweep" in
  (* a stub sweep driver standing in for the CLI's Sweep.serve_sweep
     (bin modules are not linkable from the test tree) *)
  let calls = ref 0 in
  let sweep ~kind ~apps =
    match kind with
    | "verify" ->
      incr calls;
      Some (Printf.sprintf "verify ok: %s" (String.concat "," apps), false)
    | _ -> None
  in
  let store_dir = Filename.concat dir "store" in
  let socket, join = spawn_daemon ~store_dir ~sweep dir "s" in
  with_client socket (fun c ->
    (match Serve.Client.sweep c ~kind:"verify" ~apps:[ "BFS" ] with
     | Ok (text, failed) ->
       check "sweep text delivered" true (text = "verify ok: BFS");
       check "sweep passed" false failed
     | Error e -> Alcotest.fail e);
    (* identical sweep again: served from the store, driver not re-run *)
    (match Serve.Client.sweep c ~kind:"verify" ~apps:[ "BFS" ] with
     | Ok (text, _) -> check "cached sweep identical" true (text = "verify ok: BFS")
     | Error e -> Alcotest.fail e);
    check "sweep driver ran once" true (!calls = 1);
    match Serve.Client.sweep c ~kind:"bogus" ~apps:[] with
    | Ok _ -> Alcotest.fail "bogus sweep kind accepted"
    | Error _ -> ());
  shutdown_daemon socket join

let () =
  Random.self_init ();
  Alcotest.run "serve"
    [ ( "framing"
      , [ Alcotest.test_case "round-trip" `Quick test_framing_roundtrip
        ; Alcotest.test_case "garbage rejected" `Quick
            test_framing_rejects_garbage
        ] )
    ; ( "daemon"
      , [ Alcotest.test_case "simulate + session dedup" `Slow
            test_simulate_and_dedup
        ; Alcotest.test_case "warm restart from store" `Slow
            test_warm_restart_from_store
        ; Alcotest.test_case "server-side sweep" `Quick test_server_side_sweep
        ] )
    ]
