(* The evaluation engine: content-addressed store, key structure,
   jobs=1/jobs=N determinism and multi-domain stress. *)

let fermi = Gpusim.Config.fermi
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_app abbr =
  let a = Workloads.Suite.find abbr in
  let i = Workloads.App.default_input a in
  let small =
    { i with
      Workloads.App.num_blocks = 4
    ; iters = min 2 i.Workloads.App.iters
    ; passes = min 2 i.Workloads.App.passes
    ; ilabel = "eng-small"
    }
  in
  { a with Workloads.App.inputs = [ small ] }

let launch_of ?kernel ?tlp ?input a =
  let input =
    match input with
    | Some i -> i
    | None -> Workloads.App.default_input a
  in
  Workloads.App.launch a ?kernel ?tlp ~input ()

(* ---------- key structure ---------- *)

(* Regression: the old evaluation cache was keyed on a free-form variant
   label and ignored the kernel image, so two different builds of the
   same app at the same TLP collided. Keys must cover kernel identity. *)
let test_key_covers_kernel_identity () =
  let e = Crat.Engine.create () in
  let a = small_app "STM" in
  let r = Crat.Resource.analyze fermi a in
  let k_hi =
    (Crat.Engine.allocate e a ~reg_limit:r.Crat.Resource.max_reg)
      .Regalloc.Allocator.kernel
  in
  let k_lo =
    (Crat.Engine.allocate e a ~reg_limit:(r.Crat.Resource.max_reg - 4))
      .Regalloc.Allocator.kernel
  in
  check "builds differ" true
    (Ptx.Printer.kernel_to_string k_hi <> Ptx.Printer.kernel_to_string k_lo);
  check "keys separate the two builds" true
    (Crat.Engine.sim_key e (launch_of ~kernel:k_hi a) fermi ~tlp:2
     <> Crat.Engine.sim_key e (launch_of ~kernel:k_lo a) fermi ~tlp:2);
  let s_hi = Crat.Engine.simulate e (launch_of ~kernel:k_hi a) fermi ~tlp:2 in
  let s_lo = Crat.Engine.simulate e (launch_of ~kernel:k_lo a) fermi ~tlp:2 in
  let rep = Crat.Engine.report e in
  check_int "both builds simulated" 2 rep.Crat.Engine.sim_runs;
  (* the spilling build executes more instructions *)
  check "stats are per-build" true
    (s_lo.Gpusim.Stats.thread_instrs > s_hi.Gpusim.Stats.thread_instrs)

let test_key_covers_config_input_tlp () =
  let e = Crat.Engine.create () in
  let a = small_app "GAU" in
  let input = Workloads.App.default_input a in
  let l = launch_of ~input a in
  let key = Crat.Engine.sim_key e l fermi ~tlp:2 in
  check "TLP in key" true (key <> Crat.Engine.sim_key e l fermi ~tlp:3);
  check "config in key" true
    (key <> Crat.Engine.sim_key e l Gpusim.Config.kepler ~tlp:2);
  let other =
    { input with Workloads.App.num_blocks = input.Workloads.App.num_blocks + 1 }
  in
  check "input in key" true
    (key <> Crat.Engine.sim_key e (launch_of ~input:other a) fermi ~tlp:2)

(* The trace-store key covers everything the dynamic trace depends on —
   and nothing it does not: timing configuration and TLP must NOT
   separate launches, while params and initial memory must. *)
let test_launch_key_scope () =
  let e = Crat.Engine.create () in
  let a = small_app "GAU" in
  let input = Workloads.App.default_input a in
  let l = launch_of ~input a in
  let key = Crat.Engine.launch_key e l in
  check "launch_key ignores TLP" true
    (let l3 = Gpusim.Launch.with_tlp l 3 in
     Crat.Engine.launch_key e l3 = key);
  check "sim_key still separates configs the launch_key ignores" true
    (Crat.Engine.sim_key e l fermi ~tlp:2
     <> Crat.Engine.sim_key e l Gpusim.Config.kepler ~tlp:2);
  let other =
    { input with Workloads.App.num_blocks = input.Workloads.App.num_blocks + 1 }
  in
  check "launch_key separates inputs (params and memory)" true
    (Crat.Engine.launch_key e (launch_of ~input:other a) <> key);
  (* structurally identical launch built from scratch: the physical
     memo misses but the content key must agree *)
  check "launch_key is structural, not physical" true
    (Crat.Engine.launch_key e (launch_of ~input a) = key)

(* QCheck: distinct kernel images get distinct keys *)
let test_key_injective =
  QCheck.Test.make ~count:60 ~name:"sim_key injective on kernel image"
    QCheck.(pair Testsupport.Gen.arbitrary_kernel Testsupport.Gen.arbitrary_kernel)
    (fun (k1, k2) ->
       let e = Crat.Engine.create () in
       let mk k =
         let mem = Gpusim.Memory.create () in
         Gpusim.Launch.make ~kernel:k ~block_size:64 ~num_blocks:2
           ~params:[ ("out", Gpusim.Value.I 0x2000_0000L) ]
           mem
       in
       let same_image =
         Ptx.Printer.kernel_to_string k1 = Ptx.Printer.kernel_to_string k2
       in
       let same_key =
         Crat.Engine.sim_key e (mk k1) fermi ~tlp:1
         = Crat.Engine.sim_key e (mk k2) fermi ~tlp:1
       in
       same_image = same_key)

(* ---------- store behaviour ---------- *)

let test_batch_dedups () =
  let e = Crat.Engine.create () in
  let a = small_app "GAU" in
  let l = launch_of a in
  let stats =
    Crat.Engine.simulate_batch e
      (List.map (fun tlp -> (l, fermi, tlp)) [ 1; 2; 1; 2; 1 ])
  in
  check_int "five results" 5 (List.length stats);
  let rep = Crat.Engine.report e in
  check_int "two distinct simulations" 2 rep.Crat.Engine.sim_runs;
  check "duplicates answered from the store" true (rep.Crat.Engine.sim_hits >= 3);
  (* both TLP points share one launch: one recorded it, the other replayed *)
  check_int "one trace recorded" 1 rep.Crat.Engine.trace_records;
  check_int "one point replayed" 1 rep.Crat.Engine.trace_replays;
  check "results scattered in submission order" true
    (List.nth stats 0 = List.nth stats 2
     && List.nth stats 0 = List.nth stats 4
     && List.nth stats 1 = List.nth stats 3
     && List.nth stats 0 <> List.nth stats 1)

let test_cache_false_bypasses_store () =
  let e = Crat.Engine.create () in
  let a = small_app "GAU" in
  let l = launch_of a in
  let s1 = Crat.Engine.simulate ~cache:false e l fermi ~tlp:1 in
  let s2 = Crat.Engine.simulate ~cache:false e l fermi ~tlp:1 in
  let rep = Crat.Engine.report e in
  check_int "every uncached run simulates" 2 rep.Crat.Engine.sim_runs;
  check_int "uncached runs record no trace" 0 rep.Crat.Engine.trace_records;
  check "simulation is deterministic anyway" true (s1 = s2)

(* ---------- determinism across jobs ---------- *)

let test_jobs_determinism () =
  let apps = List.map small_app [ "GAU"; "KMN"; "STM" ] in
  let run jobs =
    let e = Crat.Engine.create ~jobs () in
    let rows, comps = Crat.Experiments.fig13 e fermi apps in
    (rows, List.map (fun c -> c.Crat.Experiments.crat.Crat.Baselines.stats) comps)
  in
  let rows1, stats1 = run 1 in
  let rows4, stats4 = run 4 in
  check "fig13 rows bit-identical (jobs=1 vs jobs=4)" true (rows1 = rows4);
  check "underlying stats bit-identical" true (stats1 = stats4)

let test_design_space_batch_determinism () =
  let a = small_app "BLK" in
  let r = Crat.Resource.analyze fermi a in
  let points = Crat.Design_space.stairs fermi r in
  let eval jobs =
    Crat.Design_space.evaluate (Crat.Engine.create ~jobs ()) fermi a points
  in
  check "frontier evaluation identical across jobs" true (eval 1 = eval 3)

(* ---------- multi-domain stress ---------- *)

let test_parallel_stress () =
  let e = Crat.Engine.create ~jobs:8 () in
  let a = small_app "GAU" in
  (* many tasks, few distinct keys: domains race on the same store
     entries, the trace store and the allocation cache *)
  let tasks = List.init 32 (fun i -> i) in
  let results =
    Crat.Engine.map e
      (fun i ->
         let reg = a.Workloads.App.default_regs - (i mod 2) in
         let al = Crat.Engine.allocate e a ~reg_limit:reg in
         let st =
           Crat.Engine.simulate e
             (launch_of ~kernel:al.Regalloc.Allocator.kernel a)
             fermi ~tlp:(1 + (i mod 3))
         in
         (i, st.Gpusim.Stats.cycles))
      tasks
  in
  check_int "all tasks returned" 32 (List.length results);
  check "order preserved" true (List.map fst results = tasks);
  (* serial reference *)
  let serial = Crat.Engine.create () in
  List.iter
    (fun (i, cycles) ->
       let reg = a.Workloads.App.default_regs - (i mod 2) in
       let al = Crat.Engine.allocate serial a ~reg_limit:reg in
       let st =
         Crat.Engine.simulate serial
           (launch_of ~kernel:al.Regalloc.Allocator.kernel a)
           fermi ~tlp:(1 + (i mod 3))
       in
       check_int (Printf.sprintf "task %d matches serial" i)
         st.Gpusim.Stats.cycles cycles)
    results;
  (* racing domains may duplicate a simulation whose key is in flight,
     but every request is accounted as exactly one run or one hit *)
  let rep = Crat.Engine.report e in
  check "every request accounted" true
    (rep.Crat.Engine.sim_runs + rep.Crat.Engine.sim_hits = 32
     && rep.Crat.Engine.alloc_runs + rep.Crat.Engine.alloc_hits = 32);
  check "at least the distinct work ran" true
    (rep.Crat.Engine.sim_runs >= 6 && rep.Crat.Engine.alloc_runs >= 2);
  check "store still absorbed most of the load" true
    (rep.Crat.Engine.sim_hits > 0 && rep.Crat.Engine.alloc_hits > 0)

let test_reset () =
  let e = Crat.Engine.create () in
  let a = small_app "GAU" in
  let _ = Crat.Baselines.max_tlp e fermi a () in
  check "work recorded" true ((Crat.Engine.report e).Crat.Engine.sim_runs > 0);
  Crat.Engine.reset e;
  let rep = Crat.Engine.report e in
  check_int "counters cleared" 0 rep.Crat.Engine.sim_runs;
  let _ = Crat.Baselines.max_tlp e fermi a () in
  check "store cleared too: simulation re-runs" true
    ((Crat.Engine.report e).Crat.Engine.sim_runs > 0)

let test_create_validates () =
  check "jobs=0 rejected" true
    (try
       ignore (Crat.Engine.create ~jobs:0 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "engine"
    [ ( "keys"
      , [ Alcotest.test_case "kernel identity in key (collision regression)"
            `Slow test_key_covers_kernel_identity
        ; Alcotest.test_case "config/input/TLP in key" `Quick
            test_key_covers_config_input_tlp
        ; Alcotest.test_case "launch_key scope (no config/TLP)" `Quick
            test_launch_key_scope
        ; QCheck_alcotest.to_alcotest test_key_injective
        ] )
    ; ( "store"
      , [ Alcotest.test_case "batch dedup" `Slow test_batch_dedups
        ; Alcotest.test_case "cache:false bypasses" `Slow
            test_cache_false_bypasses_store
        ; Alcotest.test_case "reset" `Slow test_reset
        ; Alcotest.test_case "create validates jobs" `Quick test_create_validates
        ] )
    ; ( "parallel"
      , [ Alcotest.test_case "fig13 determinism across jobs" `Slow
            test_jobs_determinism
        ; Alcotest.test_case "frontier determinism across jobs" `Slow
            test_design_space_batch_determinism
        ; Alcotest.test_case "8-domain stress vs serial" `Slow
            test_parallel_stress
        ] )
    ]
