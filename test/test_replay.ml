(* Trace-driven replay: replayed statistics must be bit-identical to a
   cold run's across the full statdump fingerprint surface, and the
   trace store must key launches correctly. *)

module G = Gpusim

let fermi = G.Config.fermi
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* record under one run, replay under the same point, compare every
   Stats.t field structurally (Stats.t is pure data, so (=) is
   bit-identity) *)
let record_then_replay ?scheduler cfg (l : G.Launch.t) =
  let tr = G.Replay.create l in
  let cold =
    G.Sm.run ?scheduler ~record:tr cfg
      { l with G.Launch.memory = G.Memory.copy l.G.Launch.memory }
  in
  G.Replay.finish tr;
  let replayed = G.Sm.run ?scheduler ~replay:tr cfg l in
  (cold, replayed, tr)

(* ---------- differential sweep (statdump fingerprint surface) ---------- *)

(* The same 88-config surface bench/statdump.ml fingerprints: every
   workload, default and r20-allocated builds, TLP 1 and 3, 2 blocks. *)
let test_replay_bit_identical_suite () =
  List.iter
    (fun (app : Workloads.App.t) ->
       let input =
         { (Workloads.App.default_input app) with Workloads.App.num_blocks = 2 }
       in
       let alloc =
         Regalloc.Allocator.allocate ~block_size:app.Workloads.App.block_size
           ~shared_policy:(`Spare 512) ~reg_limit:20
           (Workloads.App.kernel app)
       in
       List.iter
         (fun tlp ->
            List.iter
              (fun (variant, kernel) ->
                 let l =
                   match kernel with
                   | None -> Workloads.App.launch app ~tlp ~input ()
                   | Some k -> Workloads.App.launch app ~kernel:k ~tlp ~input ()
                 in
                 let cold, replayed, _ = record_then_replay fermi l in
                 check
                   (Printf.sprintf "%s/%s/tlp%d bit-identical"
                      app.Workloads.App.abbr variant tlp)
                   true (cold = replayed))
              [ ("default", None)
              ; ("r20", Some alloc.Regalloc.Allocator.kernel)
              ])
         [ 1; 3 ])
    Workloads.Suite.all

(* the trace is config- and TLP-independent: record once under fermi,
   replay under kepler and at a different TLP; each must equal its own
   cold run *)
let test_trace_valid_across_config_and_tlp () =
  let app = Workloads.Suite.find "CFD" in
  let input =
    { (Workloads.App.default_input app) with Workloads.App.num_blocks = 2 }
  in
  let l = Workloads.App.launch app ~tlp:1 ~input () in
  let tr = G.Replay.create l in
  let _ =
    G.Sm.run ~record:tr fermi
      { l with G.Launch.memory = G.Memory.copy l.G.Launch.memory }
  in
  G.Replay.finish tr;
  List.iter
    (fun (name, cfg, tlp) ->
       let lt = G.Launch.with_tlp l tlp in
       let cold =
         G.Sm.run cfg { lt with G.Launch.memory = G.Memory.copy lt.G.Launch.memory }
       in
       let replayed = G.Sm.run ~replay:tr cfg lt in
       check (name ^ " matches its cold run") true (cold = replayed))
    [ ("fermi tlp3", fermi, 3)
    ; ("kepler tlp1", G.Config.kepler, 1)
    ; ("kepler tlp2", G.Config.kepler, 2)
    ]

(* replay must not touch global memory *)
let test_replay_leaves_memory_untouched () =
  let app = Workloads.Suite.find "GAU" in
  let input =
    { (Workloads.App.default_input app) with Workloads.App.num_blocks = 2 }
  in
  let l = Workloads.App.launch app ~tlp:2 ~input () in
  let before = G.Memory.copy l.G.Launch.memory in
  let _, _, tr = record_then_replay fermi l in
  ignore tr;
  check "initial memory preserved through record+replay" true
    (G.Memory.equal before l.G.Launch.memory)

(* QCheck: random kernels through the same record/replay differential,
   reusing the fastpath harness generator *)
let prop_replay_random_kernels =
  QCheck.Test.make ~count:25 ~name:"replay bit-identical on random kernels"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let mem = G.Memory.create () in
      G.Memory.write_f32_array mem ~base:0x1000_0000L
        (Workloads.Data.uniform_f32 ~seed:11 1024);
      let l =
        G.Launch.make ~kernel:k ~block_size:64 ~num_blocks:2 ~tlp_limit:2
          ~params:
            [ ("inp", G.Value.I 0x1000_0000L)
            ; ("out", G.Value.I 0x2000_0000L)
            ; ("n", G.Value.of_int 1024)
            ]
          mem
      in
      let cold, replayed, _ = record_then_replay fermi l in
      cold = replayed)

(* ---------- launch keys ---------- *)

(* the trace key must ignore what the trace does not depend on (timing
   config, TLP) and separate what it does (params, initial memory) *)
let test_launch_key_discrimination () =
  let mk ?(param = 0x1000_0000L) ?(seed = 3) () =
    let mem = G.Memory.create () in
    G.Memory.write_f32_array mem ~base:0x1000_0000L
      (Workloads.Data.uniform_f32 ~seed 64);
    let app = Workloads.Suite.find "GAU" in
    let input = Workloads.App.default_input app in
    G.Launch.make
      ~kernel:(Workloads.App.kernel app)
      ~block_size:app.Workloads.App.block_size
      ~num_blocks:input.Workloads.App.num_blocks
      ~params:[ ("inp", G.Value.I param) ]
      mem
  in
  let base = G.Replay.launch_key (mk ()) in
  check "structural: same launch content, same key" true
    (G.Replay.launch_key (mk ()) = base);
  check "TLP not in the key" true
    (G.Replay.launch_key (G.Launch.with_tlp (mk ()) 5) = base);
  check "params in the key" true
    (G.Replay.launch_key (mk ~param:0x2000_0000L ()) <> base);
  check "initial memory in the key" true
    (G.Replay.launch_key (mk ~seed:4 ()) <> base)

(* a written-then-zeroed slot must digest like an unwritten one only if
   the value genuinely reads back identically; integer zero does *)
let test_memory_digest_canonical () =
  let a = G.Memory.create () in
  let b = G.Memory.create () in
  G.Memory.write b 0x100L Ptx.Types.U32 (G.Value.of_int 0);
  check "writing integer zero keeps the canonical digest" true
    (G.Memory.digest a = G.Memory.digest b);
  G.Memory.write b 0x100L Ptx.Types.U32 (G.Value.of_int 7);
  check "a real write changes the digest" true
    (G.Memory.digest a <> G.Memory.digest b)

(* ---------- the store through the engine ---------- *)

let small_app abbr =
  let a = Workloads.Suite.find abbr in
  let i = Workloads.App.default_input a in
  { a with
    Workloads.App.inputs =
      [ { i with Workloads.App.num_blocks = 2; ilabel = "replay-small" } ]
  }

(* one launch, two configs: the engine records once and replays once,
   answering both from the same trace *)
let test_engine_records_once_per_launch () =
  let e = Crat.Engine.create () in
  let a = small_app "KMN" in
  let l = Workloads.App.launch a ~input:(Workloads.App.default_input a) () in
  let s_f = Crat.Engine.simulate e l fermi ~tlp:1 in
  let s_k = Crat.Engine.simulate e l G.Config.kepler ~tlp:1 in
  let rep = Crat.Engine.report e in
  check_int "two simulations ran" 2 rep.Crat.Engine.sim_runs;
  check_int "one trace recorded" 1 rep.Crat.Engine.trace_records;
  check_int "second config replayed" 1 rep.Crat.Engine.trace_replays;
  (* and each equals a replay-free engine's answer *)
  let e0 = Crat.Engine.create ~replay:false () in
  check "fermi stats match a no-replay engine" true
    (s_f = Crat.Engine.simulate e0 l fermi ~tlp:1);
  check "kepler stats match a no-replay engine" true
    (s_k = Crat.Engine.simulate e0 l G.Config.kepler ~tlp:1)

(* different params/memory are different launches: no trace sharing *)
let test_engine_separates_launches () =
  let e = Crat.Engine.create () in
  let a = small_app "GAU" in
  let i1 = Workloads.App.default_input a in
  let i2 = { i1 with Workloads.App.num_blocks = i1.Workloads.App.num_blocks + 1 } in
  let _ = Crat.Engine.simulate e (Workloads.App.launch a ~input:i1 ()) fermi ~tlp:1 in
  let _ = Crat.Engine.simulate e (Workloads.App.launch a ~input:i2 ()) fermi ~tlp:1 in
  let rep = Crat.Engine.report e in
  check_int "each distinct launch records its own trace" 2
    rep.Crat.Engine.trace_records;
  check_int "nothing replayed across distinct launches" 0
    rep.Crat.Engine.trace_replays

(* a budget too small for any trace degrades to cold-only, never wrong *)
let test_store_budget_eviction () =
  let e = Crat.Engine.create ~trace_budget:4 () in
  let a = small_app "GAU" in
  let l = Workloads.App.launch a ~input:(Workloads.App.default_input a) () in
  let s1 = Crat.Engine.simulate e l fermi ~tlp:1 in
  let s2 = Crat.Engine.simulate e l G.Config.kepler ~tlp:1 in
  let rep = Crat.Engine.report e in
  check_int "oversized trace never replayed" 0 rep.Crat.Engine.trace_replays;
  let e0 = Crat.Engine.create ~replay:false () in
  check "results still correct" true
    (s1 = Crat.Engine.simulate e0 l fermi ~tlp:1
     && s2 = Crat.Engine.simulate e0 l G.Config.kepler ~tlp:1)

let () =
  Alcotest.run "replay"
    [ ( "differential"
      , [ Alcotest.test_case "suite sweep bit-identical (22 apps x 2 builds x 2 TLPs)"
            `Slow test_replay_bit_identical_suite
        ; Alcotest.test_case "trace valid across config and TLP" `Slow
            test_trace_valid_across_config_and_tlp
        ; Alcotest.test_case "replay leaves memory untouched" `Quick
            test_replay_leaves_memory_untouched
        ; QCheck_alcotest.to_alcotest prop_replay_random_kernels
        ] )
    ; ( "keys"
      , [ Alcotest.test_case "launch key discrimination" `Quick
            test_launch_key_discrimination
        ; Alcotest.test_case "memory digest canonical" `Quick
            test_memory_digest_canonical
        ] )
    ; ( "engine"
      , [ Alcotest.test_case "records once per launch" `Slow
            test_engine_records_once_per_launch
        ; Alcotest.test_case "separates distinct launches" `Slow
            test_engine_separates_launches
        ; Alcotest.test_case "tiny budget degrades to cold" `Slow
            test_store_budget_eviction
        ] )
    ]
