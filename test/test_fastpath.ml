(* Differential tests for the allocation-free fast path:

   - random kernels stepped through {!Gpusim.Interp} (predecoded,
     unboxed) and {!Gpusim.Refinterp} (the original boxed interpreter)
     in lockstep, requiring bit-identical control flow, lane addresses,
     register contents (value bits AND float tags) and final memory;
   - the paged {!Gpusim.Memory} against the old Hashtbl store as a
     model, over adversarial address patterns (unaligned, negative,
     huge) and every scalar type;
   - the {!Crat.Report} writer truncating stale bytes when a shorter
     report is rewritten over a longer one. *)

module G = Gpusim

let value_eq a b =
  Int64.equal (G.Value.to_bits a) (G.Value.to_bits b)
  && Bool.equal (G.Value.is_f a) (G.Value.is_f b)

(* ---------- Interp vs Refinterp lockstep ---------- *)

let kernel_regs k =
  List.concat_map
    (fun i -> Ptx.Instr.defs i @ Ptx.Instr.uses i)
    (Ptx.Kernel.instrs k)
  |> List.sort_uniq compare

let lane_addrs_match wf (lane_addrs : (int * int64) list) =
  let n = G.Interp.mem_count wf in
  List.length lane_addrs = n
  && List.for_all2
       (fun (lane, addr) i ->
          lane = G.Interp.mem_lane wf i && Int64.equal addr (G.Interp.mem_addr wf i))
       lane_addrs
       (List.init n Fun.id)

let exec_matches wf (f : G.Interp.exec) (r : G.Refinterp.exec) =
  match (f, r) with
  | G.Interp.E_alu c, G.Refinterp.E_alu c' -> c = c'
  | ( G.Interp.E_mem { space; write; width }
    , G.Refinterp.E_mem { space = s'; write = w'; width = wd'; lane_addrs } ) ->
    Ptx.Types.equal_space space s' && write = w' && width = wd'
    && lane_addrs_match wf lane_addrs
  | G.Interp.E_barrier, G.Refinterp.E_barrier -> true
  | G.Interp.E_exit, G.Refinterp.E_exit -> true
  | _ -> false

let regs_match regs wf wr =
  List.for_all
    (fun r ->
       let vf = G.Interp.read_reg_values wf r in
       let vr = G.Refinterp.read_reg_values wr r in
       Array.length vf = Array.length vr
       && Array.for_all2 value_eq vf vr)
    regs

let prop_lockstep =
  QCheck.Test.make ~count:40 ~name:"fast path tracks reference interpreter"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let mem_f = G.Memory.create () in
      G.Memory.write_f32_array mem_f ~base:0x1000_0000L
        (Workloads.Data.uniform_f32 ~seed:11 1024);
      let mem_r = G.Memory.copy mem_f in
      let params =
        [ ("inp", G.Value.I 0x1000_0000L)
        ; ("out", G.Value.I 0x2000_0000L)
        ; ("n", G.Value.of_int 1024)
        ]
      in
      let image = G.Image.prepare k in
      let lctx_f =
        { G.Interp.image; global = mem_f; params; block_size = 64; num_blocks = 2 ; san = None}
      in
      let lctx_r =
        { G.Refinterp.image; global = mem_r; params; block_size = 64
        ; num_blocks = 2 ; san = None}
      in
      let regs = kernel_regs k in
      for ctaid = 0 to 1 do
        let _, warps_f = G.Interp.make_block lctx_f ~ctaid ~warp_size:32 in
        let _, warps_r = G.Refinterp.make_block lctx_r ~ctaid ~warp_size:32 in
        let pairs = List.combine warps_f warps_r in
        let budget = ref 2_000_000 in
        let live = ref true in
        while !live && !budget > 0 do
          live := false;
          List.iter
            (fun (wf, wr) ->
               if not (G.Interp.is_done wf) then begin
                 live := true;
                 decr budget;
                 if G.Refinterp.is_done wr then
                   QCheck.Test.fail_report "reference warp finished early";
                 if G.Interp.pc wf <> G.Refinterp.pc wr then
                   QCheck.Test.fail_report "pc diverged";
                 if G.Interp.active_mask wf <> G.Refinterp.active_mask wr then
                   QCheck.Test.fail_report "active mask diverged";
                 let ef = G.Interp.step wf in
                 let er = G.Refinterp.step wr in
                 if not (exec_matches wf ef er) then
                   QCheck.Test.fail_report "exec/lane addresses diverged"
               end)
            pairs;
          if !live && !budget = 0 then QCheck.Test.fail_report "step budget blown"
        done;
        List.iter
          (fun (wf, wr) ->
             if not (G.Refinterp.is_done wr) then
               QCheck.Test.fail_report "fast warp finished early";
             if not (regs_match regs wf wr) then
               QCheck.Test.fail_report "register file diverged")
          pairs
      done;
      G.Memory.equal mem_f mem_r)

(* whole-launch: the boxed reference semantics vs the fast path driven
   by the timing simulator (whose scheduler interleaves warps
   differently, so only the per-thread output buffer is compared) *)
let prop_ref_vs_sm =
  QCheck.Test.make ~count:15 ~name:"timing sim on fast path matches reference run"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let mem_r = G.Memory.create () in
      G.Memory.write_f32_array mem_r ~base:0x1000_0000L
        (Workloads.Data.uniform_f32 ~seed:7 1024);
      let mem_f = G.Memory.copy mem_r in
      let params =
        [ ("inp", G.Value.I 0x1000_0000L)
        ; ("out", G.Value.I 0x2000_0000L)
        ; ("n", G.Value.of_int 1024)
        ]
      in
      G.Refinterp.run
        (G.Launch.make ~kernel:k ~block_size:64 ~num_blocks:2 ~params mem_r);
      let _ =
        G.Sm.run G.Config.fermi
          (G.Launch.make ~kernel:k ~block_size:64 ~num_blocks:2 ~tlp_limit:2
             ~params mem_f)
      in
      Testsupport.Gen.outputs_equal
        (G.Memory.read_f32_array mem_r ~base:0x2000_0000L 128)
        (G.Memory.read_f32_array mem_f ~base:0x2000_0000L 128))

(* ---------- paged memory vs the old Hashtbl model ---------- *)

(* the seed's memory implementation, verbatim: the model *)
module Model = struct
  type t = (int64, G.Value.t) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let read (t : t) addr ty =
    match Hashtbl.find_opt t addr with
    | Some v -> G.Value.truncate ty v
    | None -> G.Value.truncate ty G.Value.zero

  let write (t : t) addr ty v = Hashtbl.replace t addr (G.Value.truncate ty v)
end

let gen_addr =
  QCheck.Gen.oneof
    [ QCheck.Gen.map (fun i -> Int64.of_int (4 * abs i)) (QCheck.Gen.int_bound 3000)
      (* aligned, spanning several pages *)
    ; QCheck.Gen.map
        (fun i -> Int64.of_int ((4 * abs i) + 1))
        (QCheck.Gen.int_bound 200)  (* unaligned -> side table *)
    ; QCheck.Gen.map (fun i -> Int64.of_int (-4 * (1 + abs i))) (QCheck.Gen.int_bound 200)
      (* negative -> side table *)
    ; QCheck.Gen.map
        (fun i -> Int64.add 0x4000_0000_0000_0000L (Int64.of_int (4 * abs i)))
        (QCheck.Gen.int_bound 200)  (* beyond the paged range *)
    ]

let gen_scalar = QCheck.Gen.oneofl Ptx.Types.all_scalars

let gen_value =
  QCheck.Gen.oneof
    [ QCheck.Gen.map (fun i -> G.Value.I (Int64.of_int i)) QCheck.Gen.int
    ; QCheck.Gen.map (fun f -> G.Value.F f) QCheck.Gen.float
    ; QCheck.Gen.return (G.Value.F Float.nan)
    ; QCheck.Gen.return (G.Value.I (-1L))
    ]

type mem_op =
  | Write of int64 * Ptx.Types.scalar * G.Value.t
  | Read of int64 * Ptx.Types.scalar

let gen_op =
  QCheck.Gen.oneof
    [ QCheck.Gen.map3 (fun a ty v -> Write (a, ty, v)) gen_addr gen_scalar gen_value
    ; QCheck.Gen.map2 (fun a ty -> Read (a, ty)) gen_addr gen_scalar
    ]

let pp_op = function
  | Write (a, ty, v) ->
    Printf.sprintf "write %Ld %s %Ld" a
      (Ptx.Types.scalar_to_string ty)
      (G.Value.to_bits v)
  | Read (a, ty) -> Printf.sprintf "read %Ld %s" a (Ptx.Types.scalar_to_string ty)

let arbitrary_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "\n" (List.map pp_op ops))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 1 400) gen_op)

let prop_memory_model =
  QCheck.Test.make ~count:200 ~name:"paged memory matches the Hashtbl model"
    arbitrary_ops (fun ops ->
      let m = G.Memory.create () in
      let model = Model.create () in
      List.iter
        (function
          | Write (a, ty, v) ->
            G.Memory.write m a ty v;
            Model.write model a ty v
          | Read (a, ty) ->
            let got = G.Memory.read m a ty in
            let want = Model.read model a ty in
            if not (value_eq got want) then
              QCheck.Test.fail_reportf "read %Ld %s: got %Ld/%b want %Ld/%b" a
                (Ptx.Types.scalar_to_string ty)
                (G.Value.to_bits got) (G.Value.is_f got) (G.Value.to_bits want)
                (G.Value.is_f want))
        ops;
      (* the fold view agrees with the model's contents *)
      let dump mem_fold =
        mem_fold (fun k v acc -> (k, G.Value.to_bits v, G.Value.is_f v) :: acc) []
        |> List.filter (fun (_, bits, _) -> not (Int64.equal bits 0L))
        |> List.sort compare
      in
      dump (fun f init -> G.Memory.fold f m init)
      = dump (fun f init -> Hashtbl.fold f model init))

let test_memory_copy_isolated () =
  let m = G.Memory.create () in
  G.Memory.write m 8L Ptx.Types.U32 (G.Value.of_int 7);
  let c = G.Memory.copy m in
  G.Memory.write c 8L Ptx.Types.U32 (G.Value.of_int 9);
  G.Memory.write c 1048576L Ptx.Types.F32 (G.Value.F 2.5);
  Alcotest.(check int) "original untouched" 7
    (Int64.to_int (G.Value.to_int64 (G.Memory.read m 8L Ptx.Types.U32)));
  Alcotest.(check int) "copy updated" 9
    (Int64.to_int (G.Value.to_int64 (G.Memory.read c 8L Ptx.Types.U32)));
  Alcotest.(check bool) "copies diverge" false (G.Memory.equal m c)

(* ---------- report rewrite truncation ---------- *)

let mk_report ~descr n =
  { Crat.Report.jobs = 1
  ; total_wall_s = 1.5
  ; engine =
      { Crat.Engine.jobs = 1
      ; sim_runs = n
      ; sim_hits = 0
      ; trace_records = 0
      ; trace_replays = 0
      ; alloc_runs = n
      ; alloc_hits = 0
      ; job_wall = 1.0
      ; max_queue_depth = 1
      ; batches = n
      }
  ; sanitizer = None
  ; experiments =
      List.init n (fun i ->
        { Crat.Report.id = Printf.sprintf "exp%d" i
        ; descr
        ; wall_s = 0.5
        ; job_wall_s = 0.5
        ; sim_runs = 1
        ; sim_hits = 0
        ; alloc_runs = 1
        ; alloc_hits = 0
        ; max_queue_depth = 1
        ; batches = 1
        })
  }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_report_rewrite_truncates () =
  let path = Filename.temp_file "crat_report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       let long = mk_report ~descr:"a long description that pads the file" 9 in
       let short = mk_report ~descr:"short" 1 in
       Crat.Report.write path long;
       Crat.Report.write path short;
       Alcotest.(check string)
         "file holds exactly the second report"
         (Crat.Report.to_string short) (read_file path);
       (* the pre-run probe must also drop stale content *)
       (match Crat.Report.probe path with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "probe failed: %s" msg);
       Alcotest.(check string) "probe truncates" "" (read_file path))

let () =
  Alcotest.run "fastpath"
    [ ( "differential"
      , List.map QCheck_alcotest.to_alcotest
          [ prop_lockstep; prop_ref_vs_sm; prop_memory_model ] )
    ; ( "memory"
      , [ Alcotest.test_case "copy isolation" `Quick test_memory_copy_isolated ] )
    ; ( "report"
      , [ Alcotest.test_case "rewrite truncates" `Quick
            test_report_rewrite_truncates
        ] )
    ]
