(* Tests for lib/absint and the advisor stack built on it:

   - interval-domain unit tests (transfer functions, widening/narrowing)
   - provable loop trip counts and the derived weight provider
   - a regression where a proven trip count flips the allocator's spill
     choice (the Algorithm 1 connection)
   - QCheck soundness: random kernels stepped through the reference
     interpreter; every concrete register value must lie in the claimed
     interval, match the claimed affine form, and respect claimed
     uniformity
   - the interval-driven constant folder
   - golden rendering of the advisor's P-codes
   - the differential honesty sweep: on every suite workload, dynamic
     per-pc counters never exceed a static claim and every dynamic event
     is covered by a static record. *)

module B = Ptx.Builder
module I = Ptx.Instr
module T = Ptx.Types
module A = Absint.Analysis
module Dom = Absint.Dom
module Itv = Absint.Dom.Itv
module Trip = Absint.Trip

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- interval domain ---------- *)

let itv = Alcotest.testable Itv.pp Itv.equal

let test_itv_arith () =
  Alcotest.check itv "add" (Itv.range 11 23)
    (Itv.add (Itv.range 1 3) (Itv.range 10 20));
  Alcotest.check itv "sub" (Itv.range (-19) (-7))
    (Itv.sub (Itv.range 1 3) (Itv.range 10 20));
  Alcotest.check itv "mul signs" (Itv.range (-8) 12)
    (Itv.mul (Itv.range (-2) 3) (Itv.const 4));
  Alcotest.check itv "shl" (Itv.range 4 8)
    (Itv.shl (Itv.range 1 2) (Itv.const 2));
  Alcotest.check itv "shr signed" (Itv.range (-4) 4)
    (Itv.shr ~signed:true (Itv.range (-8) 8) (Itv.const 1));
  Alcotest.check itv "logand bound" (Itv.range 0 7)
    (Itv.logand (Itv.range 0 100) (Itv.range 0 7));
  check "top absorbs" true (Itv.is_top (Itv.add Itv.top (Itv.const 1)))

let test_itv_lattice () =
  Alcotest.check itv "join" (Itv.range 0 9)
    (Itv.join (Itv.range 0 3) (Itv.range 7 9));
  let w = Itv.widen (Itv.range 0 10) (Itv.range 0 20) in
  check "widen pushes moving bound to +oo" true (w.Itv.hi = max_int);
  check "widen keeps stable bound" true (w.Itv.lo = 0);
  Alcotest.check itv "narrow refines infinite bound" (Itv.range 0 100)
    (Itv.narrow w (Itv.range 0 100));
  check "contains" true (Itv.contains (Itv.range (-5) 5) 3L);
  check "not contains" false (Itv.contains (Itv.range (-5) 5) 6L);
  check_int "singleton" 4 (Option.get (Itv.singleton (Itv.const 4)))

(* ---------- trip counts ---------- *)

let store_u32 b out64 v =
  B.st b T.Global T.U32 (B.reg out64) 0 (B.reg v)

let counted_loop_kernel name below =
  let b = B.create name in
  let out = B.param b "out" T.U64 in
  let out64 = B.ld_param b T.U64 out in
  let acc = B.mov b T.U32 (B.imm 0) in
  B.for_loop b ~from:(B.imm 0) ~below ~step:1 (fun i ->
    B.acc_binop b I.Add T.U32 acc (B.reg i));
  store_u32 b out64 acc;
  B.finish b

let analysis_of ?params k = A.run ~block_size:64 ?params (Cfg.Flow.of_kernel k)

let the_loop an =
  match Trip.loops an with
  | [ l ] -> l
  | ls -> Alcotest.failf "expected exactly one loop, got %d" (List.length ls)

let test_trip_constant () =
  let an = analysis_of (counted_loop_kernel "trip10" (B.imm 10)) in
  Alcotest.(check (option int)) "ten trips" (Some 10) (the_loop an).Trip.trips

let test_trip_zero () =
  let an = analysis_of (counted_loop_kernel "trip0" (B.imm 0)) in
  Alcotest.(check (option int)) "zero trips" (Some 0) (the_loop an).Trip.trips

let param_loop_kernel () =
  let b = B.create "tripn" in
  let out = B.param b "out" T.U64 in
  let n = B.param b "n" T.U32 in
  let out64 = B.ld_param b T.U64 out in
  let nval = B.ld_param b T.U32 n in
  let acc = B.mov b T.U32 (B.imm 0) in
  B.for_loop b ~from:(B.imm 0) ~below:(B.reg nval) ~step:1 (fun i ->
    B.acc_binop b I.Add T.U32 acc (B.reg i));
  store_u32 b out64 acc;
  B.finish b

let test_trip_param () =
  let k = param_loop_kernel () in
  Alcotest.(check (option int)) "unknown without the launch" None
    (the_loop (analysis_of k)).Trip.trips;
  Alcotest.(check (option int)) "proven with the parameter value" (Some 7)
    (the_loop (analysis_of ~params:[ ("n", 7L) ] k)).Trip.trips

let test_trip_shr () =
  (* x = 64; do { x >>= 1 } while (x > 0)  — 7 body executions *)
  let b = B.create "tripshr" in
  let out = B.param b "out" T.U64 in
  let out64 = B.ld_param b T.U64 out in
  let x = B.mov b T.U32 (B.imm 64) in
  let l = B.fresh_label b "Lshr" in
  B.label b l;
  B.acc_binop b I.Shr T.U32 x (B.imm 1);
  let p = B.setp b I.Gt T.U32 (B.reg x) (B.imm 0) in
  B.bra_if b p l;
  store_u32 b out64 x;
  let an = analysis_of (B.finish b) in
  Alcotest.(check (option int)) "shift-reduction trips" (Some 7)
    (the_loop an).Trip.trips

let test_weight_provider () =
  let k = counted_loop_kernel "trip7w" (B.imm 7) in
  let an = analysis_of k in
  let flow = A.flow an in
  let l = the_loop an in
  let body_pc = flow.Cfg.Flow.blocks.(l.Trip.header).Cfg.Flow.first in
  let trips, unproven = Trip.instr_trips [ l ] flow body_pc in
  Alcotest.(check (option int)) "instr trips" (Some 7) trips;
  check_int "no unproven enclosing loop" 0 unproven;
  Alcotest.(check (float 1e-9)) "proven weight" 7.0
    (Trip.weight_provider an body_pc);
  (* outside the loop the provider matches the heuristic exactly *)
  Alcotest.(check (float 1e-9)) "depth-0 weight" 1.0
    (Trip.weight_provider an 0)

(* ---------- proven weights change the spill choice ---------- *)

(* Two spill candidates interfere across a loop region: [x] is touched
   once inside a loop that provably runs twice, [y] five times outside
   any loop. The 10^depth heuristic prices x at ~12 accesses and spills
   y (~6); the proven trip count prices x at ~4 and spills x instead —
   the paper's Figure 8 point, now decided by a real bound. *)
let spill_choice_kernel () =
  let b = B.create "spillpick" in
  let out = B.param b "out" T.U64 in
  let out64 = B.ld_param b T.U64 out in
  let x = B.mov b T.U32 (B.imm 5) in
  let y = B.mov b T.U32 (B.imm 7) in
  let fillers = List.init 4 (fun i -> B.mov b T.U32 (B.imm (20 + i))) in
  let acc = B.mov b T.U32 (B.imm 0) in
  B.for_loop b ~from:(B.imm 0) ~below:(B.imm 2) ~step:1 (fun _ ->
    B.acc_binop b I.Add T.U32 acc (B.reg x));
  for _ = 1 to 5 do
    B.acc_binop b I.Add T.U32 acc (B.reg y)
  done;
  List.iter
    (fun f ->
       for _ = 1 to 8 do
         B.acc_binop b I.Add T.U32 acc (B.reg f)
       done)
    fillers;
  B.acc_binop b I.Add T.U32 acc (B.reg x);
  store_u32 b out64 acc;
  (B.finish b, x, y)

let absint_weights flow = Trip.weight_provider (A.run ~block_size:64 flow)

let test_proven_weight_flips_spill_choice () =
  let k, x, y = spill_choice_kernel () in
  let spilled_regs ?weight_provider () =
    let a =
      Regalloc.Allocator.allocate ?weight_provider ~block_size:64 ~reg_limit:9
        k
    in
    List.map (fun (p : Regalloc.Spill.placement) -> p.Regalloc.Spill.reg)
      a.Regalloc.Allocator.spilled
  in
  (* The allocator iterates until the pressure fits, so extra registers can
     ride along with either choice; the flip we are testing is which register
     is the *cheapest* spill candidate.  The depth heuristic prices x's
     in-loop use at 10 per trip-agnostic depth level, so it protects x and
     sacrifices y first; the proven 2-trip weight reveals x as the cheaper
     spill and it moves to the front of the queue. *)
  let heuristic = spilled_regs () in
  let proven = spilled_regs ~weight_provider:absint_weights () in
  check "heuristic spills y first" true (List.nth_opt heuristic 0 = Some y);
  check "heuristic keeps x" false (List.mem x heuristic);
  check "proven trips spill x first" true (List.nth_opt proven 0 = Some x);
  check "proven trips spill x" true (List.mem x proven)

(* ---------- QCheck soundness against Refinterp ---------- *)

let inp_base = 0x1000_0000L
let out_base = 0x2000_0000L

let soundness_params = [ ("inp", inp_base); ("out", out_base); ("n", 1024L) ]

let check_warp_state an w =
  match Gpusim.Refinterp.peek w with
  | None -> ()
  | Some ins ->
    let pc = Gpusim.Refinterp.pc w in
    let mask = Gpusim.Refinterp.active_mask w in
    let ctaid = (Gpusim.Refinterp.block_of w).Gpusim.Refinterp.ctaid in
    let warp_base = Gpusim.Refinterp.warp_id w * 32 in
    List.iter
      (fun r ->
         let dv = A.value_at an pc r in
         let values = Gpusim.Refinterp.read_reg_values w r in
         let seen = ref None in
         Array.iteri
           (fun lane v ->
              if mask land (1 lsl lane) <> 0 then begin
                let bits = Gpusim.Value.to_bits v in
                if not (Itv.contains dv.Dom.itv bits) then
                  Alcotest.failf "pc %d %%r%d lane %d: %Ld outside %s" pc
                    (Ptx.Reg.id r) lane bits
                    (Format.asprintf "%a" Itv.pp dv.Dom.itv);
                let a = dv.Dom.aff in
                (if a.Dom.exact && a.Dom.sym = None then
                   let tid = warp_base + lane in
                   let expected =
                     Int64.add
                       (Int64.add
                          (Int64.mul (Int64.of_int a.Dom.tid) (Int64.of_int tid))
                          (Int64.mul (Int64.of_int a.Dom.cta)
                             (Int64.of_int ctaid)))
                       (Int64.of_int a.Dom.base)
                   in
                   if not (Int64.equal bits expected) then
                     Alcotest.failf
                       "pc %d %%r%d lane %d: %Ld <> affine %Ld (tid %d cta %d)"
                       pc (Ptx.Reg.id r) lane bits expected a.Dom.tid a.Dom.cta);
                if dv.Dom.uni then begin
                  match !seen with
                  | None -> seen := Some bits
                  | Some prev ->
                    if not (Int64.equal prev bits) then
                      Alcotest.failf
                        "pc %d %%r%d: claimed uniform but lanes differ (%Ld vs %Ld)"
                        pc (Ptx.Reg.id r) prev bits
                end
              end)
           values)
      (I.uses ins)

let run_checked k =
  let block_size = 64 and num_blocks = 2 in
  let an =
    A.run ~block_size ~num_blocks ~warp_size:32 ~params:soundness_params
      (Cfg.Flow.of_kernel k)
  in
  let mem = Gpusim.Memory.create () in
  Gpusim.Memory.write_f32_array mem ~base:inp_base
    (Workloads.Data.uniform_f32 ~seed:5 1024);
  let image = Gpusim.Image.prepare k in
  let lctx =
    { Gpusim.Refinterp.image
    ; global = mem
    ; params =
        [ ("inp", Gpusim.Value.I inp_base)
        ; ("out", Gpusim.Value.I out_base)
        ; ("n", Gpusim.Value.of_int 1024)
        ]
    ; block_size
    ; num_blocks; san = None
    }
  in
  for ctaid = 0 to num_blocks - 1 do
    let _block, warps = Gpusim.Refinterp.make_block lctx ~ctaid ~warp_size:32 in
    List.iter
      (fun w ->
         (* generated kernels are barrier-free: run each warp to
            completion, checking the claimed state before every step *)
         while not (Gpusim.Refinterp.is_done w) do
           check_warp_state an w;
           ignore (Gpusim.Refinterp.step w)
         done)
      warps
  done

let prop_absint_sound =
  QCheck.Test.make ~count:60
    ~name:"concrete runs stay inside intervals, affine forms and uniformity"
    Testsupport.Gen.arbitrary_kernel
    (fun k ->
       run_checked k;
       true)

(* ---------- QCheck: hybrid-sanitizer soundness ---------- *)

(* Force-arm every claim (including Proven_safe) on random kernels with
   shared traffic: a violation recorded at a proven-safe pc disproves
   the static bounds analysis. Residual pcs may trip — the generator's
   data-dependent shared store really does escape its array — and the
   boxed and predecoded interpreters must agree on what they saw. *)
let run_sanitized k =
  let block_size = 64 and num_blocks = 2 in
  let an =
    A.run ~block_size ~num_blocks ~warp_size:32 ~params:soundness_params
      (Cfg.Flow.of_kernel k)
  in
  let mask = Absint.Bounds.mask ~force:true (Absint.Bounds.analyze an) in
  let launch () =
    let mem = Gpusim.Memory.create () in
    Gpusim.Memory.write_f32_array mem ~base:inp_base
      (Workloads.Data.uniform_f32 ~seed:5 1024);
    Gpusim.Launch.make ~warp_size:32 ~kernel:k ~block_size ~num_blocks
      ~params:
        [ ("inp", Gpusim.Value.I inp_base)
        ; ("out", Gpusim.Value.I out_base)
        ; ("n", Gpusim.Value.of_int 1024)
        ]
      mem
  in
  let ref_rt = Gpusim.Sancheck.runtime mask in
  Gpusim.Refinterp.run ~sanitize:ref_rt (launch ());
  let fast_rt = Gpusim.Sancheck.runtime mask in
  Gpusim.Emulator.run ~sanitize:fast_rt (launch ());
  List.iter
    (fun (pc, (s : Gpusim.Sancheck.stat)) ->
       if s.Gpusim.Sancheck.violations > 0 then
         match Gpusim.Sancheck.claim_at mask pc with
         | Some (Gpusim.Sancheck.Proven_safe _) ->
           Alcotest.failf "pc %d: proven safe but %d dynamic violation(s)" pc
             s.Gpusim.Sancheck.violations
         | Some (Gpusim.Sancheck.Residual _ | Gpusim.Sancheck.Proven_oob _) ->
           ()
         | None -> Alcotest.failf "pc %d: violation with no static claim" pc)
    (Gpusim.Sancheck.stats ref_rt.Gpusim.Sancheck.counters);
  let vr = Gpusim.Sancheck.violations ref_rt.Gpusim.Sancheck.counters in
  let vf = Gpusim.Sancheck.violations fast_rt.Gpusim.Sancheck.counters in
  if vr <> vf then
    Alcotest.failf
      "interpreters disagree on violations: Refinterp saw %d, Interp %d" vr vf

let prop_sanitizer_sound =
  QCheck.Test.make ~count:60
    ~name:"forced sanitizer checks never fire on proven-safe accesses"
    (QCheck.make ~print:Ptx.Printer.kernel_to_string
       (Testsupport.Gen.kernel ~with_shared:true ()))
    (fun k ->
       run_sanitized k;
       true)

(* ---------- interval-driven constant folding ---------- *)

let test_intfold () =
  let b = B.create "intfold" in
  let out = B.param b "out" T.U64 in
  let out64 = B.ld_param b T.U64 out in
  let tid = B.special b Ptx.Reg.Tid_x in
  let z = B.binop b I.And T.U32 (B.reg tid) (B.imm 0) in
  let r = B.add b T.U32 (B.reg z) (B.imm 5) in
  store_u32 b out64 r;
  let k = B.finish b in
  let k', n = Ptxopt.Intfold.run ~block_size:64 k in
  check "folded the provably-zero operand" true (n >= 1);
  let folded_to_zero =
    List.exists
      (function
        | I.Binop (I.Add, T.U32, _, I.Oimm 0L, _)
        | I.Binop (I.Add, T.U32, _, _, I.Oimm 0L) -> true
        | _ -> false)
      (Ptx.Kernel.instrs k')
  in
  check "operand rewritten to the immediate" true folded_to_zero;
  (* the armed pipeline then cleans the dead mask away *)
  let k'', report = Ptxopt.Pipeline.run ~intfold:true ~block_size:64 k in
  check "pipeline shrinks the kernel" true
    (Ptx.Kernel.instr_count k'' < Ptx.Kernel.instr_count k);
  check "report counts the interval folds" true (report.Ptxopt.Pipeline.folded >= 1)

(* ---------- advisor: P-codes, golden rendering ---------- *)

(* A deterministic kernel exhibiting every advisory family the suite
   itself does not cover: strided global traffic (P202), proven and
   possible bank conflicts (P301/P302), a divergent branch inside and
   outside loops (P401/P402), an unprovable and a zero-trip loop
   (P501/P502), and pressure past a tiny budget (P101). *)
let clinic_kernel () =
  let b = B.create "clinic" in
  let inp = B.param b "inp" T.U64 in
  let out = B.param b "out" T.U64 in
  let inp64 = B.ld_param b T.U64 inp in
  let out64 = B.ld_param b T.U64 out in
  let tid = B.special b Ptx.Reg.Tid_x in
  let sdata = B.decl_shared b "sdata" T.F32 256 in
  let sbase = B.mov b T.U32 sdata in
  (* P202: 16-byte lane stride *)
  let sb = B.mul b T.U32 (B.reg tid) (B.imm 16) in
  let so = B.cvt b T.U64 T.U32 (B.reg sb) in
  let sa = B.add b T.U64 (B.reg inp64) (B.reg so) in
  let sv = B.ld b T.Global T.F32 (B.reg sa) 0 in
  (* P301: shared store at an 8-byte lane stride, provably 2-way *)
  let cb = B.mul b T.U32 (B.reg tid) (B.imm 8) in
  let ca = B.add b T.U32 (B.reg sbase) (B.reg cb) in
  B.st b T.Shared T.F32 (B.reg ca) 0 (B.reg sv);
  (* P302: data-dependent shared index *)
  let gb = B.mul b T.U32 (B.reg tid) (B.imm 4) in
  let go = B.cvt b T.U64 T.U32 (B.reg gb) in
  let ga = B.add b T.U64 (B.reg inp64) (B.reg go) in
  let raw = B.ld b T.Global T.U32 (B.reg ga) 0 in
  let m = B.binop b I.And T.U32 (B.reg raw) (B.imm 255) in
  let mb = B.mul b T.U32 (B.reg m) (B.imm 4) in
  let ma = B.add b T.U32 (B.reg sbase) (B.reg mb) in
  let dv = B.ld b T.Shared T.F32 (B.reg ma) 0 in
  let acc = B.mov b T.F32 (B.fimm 0.0) in
  (* P501 + P401: data-bounded loop with a divergent branch inside *)
  B.for_loop b ~from:(B.imm 0) ~below:(B.reg m) ~step:1 (fun _ ->
    let bit = B.binop b I.And T.U32 (B.reg raw) (B.imm 1) in
    let p = B.setp b I.Eq T.U32 (B.reg bit) (B.imm 1) in
    let skip = B.fresh_label b "Lskip" in
    B.bra_ifnot b p skip;
    B.acc_binop b I.Add T.F32 acc (B.reg dv);
    B.label b skip);
  (* P502: provably dead loop *)
  B.for_loop b ~from:(B.imm 0) ~below:(B.imm 0) ~step:1 (fun _ ->
    B.acc_binop b I.Add T.F32 acc (B.fimm 1.0));
  (* P402: straight-line divergent branch *)
  let p2 = B.setp b I.Lt T.U32 (B.reg tid) (B.imm 7) in
  let skip2 = B.fresh_label b "Ltail" in
  B.bra_ifnot b p2 skip2;
  B.acc_binop b I.Add T.F32 acc (B.reg sv);
  B.label b skip2;
  let ob = B.mul b T.U32 (B.reg tid) (B.imm 4) in
  let oo = B.cvt b T.U64 T.U32 (B.reg ob) in
  let oa = B.add b T.U64 (B.reg out64) (B.reg oo) in
  B.st b T.Global T.F32 (B.reg oa) 0 (B.reg acc);
  B.finish b

let advisor_render () =
  let clinic =
    Verify.Advisor.lint_kernel ~block_size:64 ~reg_budget:4 (clinic_kernel ())
  in
  let kmn = Crat.Lint.lint (Workloads.Suite.find "KMN") in
  String.concat ""
    (List.map
       (fun (r : Verify.Advisor.report) ->
          Printf.sprintf "# %s (maxlive %d)\n%s\n" r.Verify.Advisor.kernel
            r.Verify.Advisor.pressure.Absint.Pressure.maxlive
            (Verify.Diagnostic.render r.Verify.Advisor.diags))
       [ clinic; kmn ])

let test_advisor_golden () =
  let actual = advisor_render () in
  match Sys.getenv_opt "ADVISOR_GOLDEN_WRITE" with
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc actual)
  | None ->
    let path =
      List.find Sys.file_exists
        [ "golden/advisor.expected"; "test/golden/advisor.expected" ]
    in
    let expected = In_channel.with_open_text path In_channel.input_all in
    Alcotest.(check string) "advisor rendering" expected actual

let test_advisor_codes_documented () =
  let clinic =
    Verify.Advisor.lint_kernel ~block_size:64 ~reg_budget:4 (clinic_kernel ())
  in
  let codes = List.map (fun d -> d.Verify.Diagnostic.code) clinic.Verify.Advisor.diags in
  List.iter
    (fun c ->
       check
         (Printf.sprintf "code %s documented" c)
         true
         (List.mem_assoc c Verify.Diagnostic.all_codes))
    codes;
  (* the clinic exercises every family *)
  List.iter
    (fun c ->
       check (Printf.sprintf "clinic emits %s" c) true (List.mem c codes))
    [ "P101"; "P202"; "P301"; "P302"; "P401"; "P402"; "P501"; "P502" ]

(* ---------- differential honesty sweep over the suite ---------- *)

let test_lint_sweep_validates () =
  List.iter
    (fun (app : Workloads.App.t) ->
       let report, failures = Crat.Lint.validate app in
       if failures <> [] then
         Alcotest.failf "%s advisor claims violated:\n%s"
           app.Workloads.App.abbr
           (String.concat "\n" failures);
       (* the sweep is also the coverage proof: validate checks every
          dynamic mem access / branch has a static record at its pc *)
       ignore report)
    Workloads.Suite.all

let () =
  Alcotest.run "absint"
    [ ( "interval"
      , [ Alcotest.test_case "arithmetic" `Quick test_itv_arith
        ; Alcotest.test_case "lattice" `Quick test_itv_lattice
        ] )
    ; ( "trips"
      , [ Alcotest.test_case "constant bound" `Quick test_trip_constant
        ; Alcotest.test_case "zero-trip" `Quick test_trip_zero
        ; Alcotest.test_case "parameter bound" `Quick test_trip_param
        ; Alcotest.test_case "shift reduction" `Quick test_trip_shr
        ; Alcotest.test_case "weight provider" `Quick test_weight_provider
        ] )
    ; ( "weights"
      , [ Alcotest.test_case "proven trip count flips the spill choice"
            `Quick test_proven_weight_flips_spill_choice
        ] )
    ; ( "soundness"
      , List.map QCheck_alcotest.to_alcotest
          [ prop_absint_sound; prop_sanitizer_sound ] )
    ; ( "intfold"
      , [ Alcotest.test_case "folds interval singletons" `Quick test_intfold ] )
    ; ( "advisor"
      , [ Alcotest.test_case "golden file" `Quick test_advisor_golden
        ; Alcotest.test_case "codes documented" `Quick
            test_advisor_codes_documented
        ] )
    ; ( "sweep"
      , [ Alcotest.test_case "claims hold on every workload" `Slow
            test_lint_sweep_validates
        ] )
    ]
