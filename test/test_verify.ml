(* Tests for lib/verify: every seeded known-bad subject is rejected with
   its documented code, the whole workload suite verifies clean at every
   compiler stage (pre-opt, post-opt, post-allocation), diagnostic
   rendering is stable against a golden file, and the optional pipeline
   gate rejects/ignores according to its switch. *)

module D = Verify.Diagnostic

let check = Alcotest.(check bool)

(* ---------- corpus: one broken subject per checker ---------- *)

let corpus_case (c : Verify.Corpus.case) () =
  let diags = Verify.Corpus.diagnostics_of c in
  (* S403 is documented as a warning (the check stays armed); every
     other corpus code must be error-severity *)
  let expect_error = c.Verify.Corpus.expect <> "S403" in
  let hit =
    List.exists
      (fun d ->
         d.D.code = c.Verify.Corpus.expect && D.is_error d = expect_error)
      diags
  in
  if not hit then
    Alcotest.failf "corpus %s: expected %s %s, got:\n%s"
      c.Verify.Corpus.label
      (if expect_error then "error" else "warning")
      c.Verify.Corpus.expect (D.render diags)

let corpus_tests =
  List.map
    (fun (c : Verify.Corpus.case) ->
       Alcotest.test_case
         (Printf.sprintf "%s rejected with %s" c.Verify.Corpus.label
            c.Verify.Corpus.expect)
         `Quick (corpus_case c))
    (Verify.Corpus.cases ())

(* ---------- acceptance sweep: the suite verifies clean ---------- *)

let fail_on_errors label diags =
  match D.errors diags with
  | [] -> ()
  | errs -> Alcotest.failf "%s:\n%s" label (D.render errs)

let test_suite_clean_all_stages () =
  List.iter
    (fun (app : Workloads.App.t) ->
       let abbr = app.Workloads.App.abbr in
       let block_size = app.Workloads.App.block_size in
       let k = Workloads.App.kernel app in
       fail_on_errors (abbr ^ " pre-opt")
         (Verify.Checker.check_kernel ~block_size k);
       let k', _ = Ptxopt.Pipeline.run k in
       fail_on_errors (abbr ^ " post-opt")
         (Verify.Checker.check_kernel ~block_size k');
       let a =
         Regalloc.Allocator.allocate ~block_size
           ~reg_limit:app.Workloads.App.default_regs k
       in
       fail_on_errors (abbr ^ " post-alloc")
         (Verify.Checker.check_allocation a))
    Workloads.Suite.all

(* ---------- golden rendering: stable codes and ordering ---------- *)

let golden_render () =
  String.concat ""
    (List.map
       (fun (c : Verify.Corpus.case) ->
          Printf.sprintf "# %s (expect %s)\n%s\n" c.Verify.Corpus.label
            c.Verify.Corpus.expect
            (D.render (Verify.Corpus.diagnostics_of c)))
       (Verify.Corpus.cases ()))

let test_golden_rendering () =
  let actual = golden_render () in
  match Sys.getenv_opt "VERIFY_GOLDEN_WRITE" with
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc actual)
  | None ->
    (* dune runtest runs in _build/default/test; dune exec in the root *)
    let path =
      List.find Sys.file_exists
        [ "golden/diagnostics.expected"; "test/golden/diagnostics.expected" ]
    in
    let expected = In_channel.with_open_text path In_channel.input_all in
    Alcotest.(check string) "diagnostic rendering" expected actual

let test_render_order_and_dedup () =
  let d1 = D.error ~instr:5 ~kernel:"k" ~code:"V201" "later" in
  let d2 = D.error ~instr:1 ~kernel:"k" ~code:"V101" "earlier" in
  let d3 = D.warning ~kernel:"k" ~code:"V112" "no location sorts last" in
  let sorted = D.sort [ d1; d3; d2; d1 ] in
  check "duplicates dropped" true (List.length sorted = 3);
  Alcotest.(check (list string))
    "instruction order, unlocated last"
    [ "V101"; "V201"; "V112" ]
    (List.map (fun d -> d.D.code) sorted)

let test_all_codes_documented () =
  List.iter
    (fun (c : Verify.Corpus.case) ->
       List.iter
         (fun (d : D.t) ->
            check
              (Printf.sprintf "code %s documented" d.D.code)
              true
              (List.mem_assoc d.D.code D.all_codes))
         (Verify.Corpus.diagnostics_of c))
    (Verify.Corpus.cases ())

(* ---------- the gate ---------- *)

let bad_kernel label =
  match
    List.find
      (fun (c : Verify.Corpus.case) -> c.Verify.Corpus.label = label)
      (Verify.Corpus.cases ())
  with
  | { Verify.Corpus.subject = Verify.Corpus.Kernel k; _ } -> k
  | _ -> assert false

let test_gate_rejects_when_armed () =
  Verify.Gate.set true;
  Fun.protect ~finally:Verify.Gate.clear (fun () ->
    check "gate armed" true (Verify.Gate.enabled ());
    match Ptxopt.Pipeline.run (bad_kernel "uninit") with
    | _ -> Alcotest.fail "armed gate let a bad kernel through"
    | exception Verify.Gate.Rejected (stage, errs) ->
      Alcotest.(check string) "rejected at the input stage" "opt:input" stage;
      check "error diagnostics carried" true (D.has_errors errs))

let test_gate_noop_when_disarmed () =
  Verify.Gate.set false;
  Fun.protect ~finally:Verify.Gate.clear (fun () ->
    let k', _ = Ptxopt.Pipeline.run (bad_kernel "uninit") in
    check "pipeline ran" true (Ptx.Kernel.instr_count k' > 0))

let test_gate_warnings_never_reject () =
  Verify.Gate.set true;
  Fun.protect ~finally:Verify.Gate.clear (fun () ->
    (* DTC carries a V403 warning; the armed gate must still pass it *)
    let app = Workloads.Suite.find "DTC" in
    Verify.Gate.run ~stage:"test"
      [ Verify.Gate.Kernel
          { block_size = Some app.Workloads.App.block_size
          ; kernel = Workloads.App.kernel app
          }
      ])

let () =
  Alcotest.run "verify"
    [ ("corpus", corpus_tests)
    ; ( "sweep"
      , [ Alcotest.test_case "suite clean at all stages" `Slow
            test_suite_clean_all_stages
        ] )
    ; ( "rendering"
      , [ Alcotest.test_case "golden file" `Quick test_golden_rendering
        ; Alcotest.test_case "order and dedup" `Quick test_render_order_and_dedup
        ; Alcotest.test_case "codes documented" `Quick test_all_codes_documented
        ] )
    ; ( "gate"
      , [ Alcotest.test_case "rejects when armed" `Quick test_gate_rejects_when_armed
        ; Alcotest.test_case "no-op when disarmed" `Quick test_gate_noop_when_disarmed
        ; Alcotest.test_case "warnings never reject" `Quick
            test_gate_warnings_never_reject
        ] )
    ]
