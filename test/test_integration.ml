(* End-to-end integration tests: the full CRAT pipeline over real
   workloads, cross-checked between the emulator and the timing
   simulator, plus shape assertions on the headline comparison. These
   run on reduced inputs to keep `dune runtest` fast. *)

let fermi = Gpusim.Config.fermi
let kepler = Gpusim.Config.kepler
let check = Alcotest.(check bool)

let small_app ?(blocks = 4) abbr =
  let a = Workloads.Suite.find abbr in
  let i = Workloads.App.default_input a in
  let small =
    { i with
      Workloads.App.num_blocks = blocks
    ; iters = min 2 i.Workloads.App.iters
    ; passes = min 3 i.Workloads.App.passes
    ; ilabel = "it-small"
    }
  in
  { a with Workloads.App.inputs = [ small ] }

(* CRAT's rewritten kernel computes the same results as the virgin SSA
   kernel, for every workload shape (run on the emulator) *)
let test_crat_kernels_semantically_equal () =
  List.iter
    (fun abbr ->
       let a = small_app abbr in
       let i = Workloads.App.default_input a in
       let _, plan = Crat.Baselines.crat (Crat.Engine.create ()) fermi a () in
       let chosen = plan.Crat.Optimizer.chosen in
       let run kernel =
         let mem = Workloads.App.memory a i in
         Gpusim.Emulator.run
           (Gpusim.Launch.make ~kernel
              ~block_size:a.Workloads.App.block_size
              ~num_blocks:i.Workloads.App.num_blocks
              ~params:(Workloads.App.params a i) mem);
         Gpusim.Memory.read_f32_array mem ~base:Workloads.Data.out_base
           (Workloads.App.output_words a i)
       in
       let reference = run (Workloads.App.kernel a) in
       let allocated = run chosen.Crat.Optimizer.alloc.Regalloc.Allocator.kernel in
       check (abbr ^ ": CRAT build is semantics-preserving") true
         (Testsupport.Gen.outputs_equal reference allocated))
    [ "CFD"; "KMN"; "STM"; "SPMV"; "HST" ]

(* headline shape: CRAT never loses to OptTLP, and beats it where the
   paper says it should *)
let test_fig13_shape_small () =
  let engine = Crat.Engine.create () in
  let apps = List.map small_app [ "CFD"; "KMN"; "STM" ] in
  let rows, comps = Crat.Experiments.fig13 engine fermi apps in
  List.iter
    (fun (r : Crat.Experiments.fig13_row) ->
       check (r.Crat.Experiments.abbr ^ ": CRAT >= 0.95x OptTLP") true
         (r.Crat.Experiments.s_crat >= 0.95);
       check (r.Crat.Experiments.abbr ^ ": CRAT >= CRAT-local - eps") true
         (r.Crat.Experiments.s_crat >= r.Crat.Experiments.s_crat_local -. 0.1))
    rows;
  (* fig14 companion: CRAT TLP never exceeds MaxTLP *)
  List.iter
    (fun (r : Crat.Experiments.fig14_row) ->
       check "CRAT TLP <= MaxTLP" true
         (r.Crat.Experiments.tlp_crat <= r.Crat.Experiments.tlp_max))
    (Crat.Experiments.fig14 comps)

let test_insensitive_apps_flat () =
  let engine = Crat.Engine.create () in
  let apps = List.map small_app [ "GAU"; "PATH" ] in
  let rows, _ = Crat.Experiments.fig13 engine fermi apps in
  List.iter
    (fun (r : Crat.Experiments.fig13_row) ->
       check (r.Crat.Experiments.abbr ^ ": insensitive stays near 1.0") true
         (r.Crat.Experiments.s_crat >= 0.9 && r.Crat.Experiments.s_crat <= 1.35))
    rows

let test_kepler_runs () =
  let a = small_app "KMN" in
  let c, plan = Crat.Baselines.crat (Crat.Engine.create ()) kepler a () in
  check "kepler MinReg doubles the register budget" true
    (Gpusim.Config.min_reg kepler > Gpusim.Config.min_reg fermi + 5);
  check "kepler plan valid" true
    (plan.Crat.Optimizer.chosen.Crat.Optimizer.point.Crat.Design_space.reg
     <= kepler.Gpusim.Config.max_regs_per_thread);
  check "kepler run completed" true (Crat.Baselines.cycles c > 0)

let test_shared_spill_reduces_local_traffic () =
  let engine = Crat.Engine.create () in
  (* STE spills even at the register cap; Algorithm 1 must strictly
     reduce the dynamic local-memory traffic *)
  let a = small_app "STE" in
  let cl, _ = Crat.Baselines.crat ~shared_spilling:false engine fermi a () in
  let c, _ = Crat.Baselines.crat engine fermi a () in
  let local_l = Gpusim.Stats.local_accesses cl.Crat.Baselines.stats in
  let local_s = Gpusim.Stats.local_accesses c.Crat.Baselines.stats in
  check "CRAT-local has local spill traffic" true (local_l > 0);
  check "Algorithm 1 reduces local traffic" true (local_s < local_l)

let test_static_mode_runs () =
  let a = small_app "KMN" in
  let c, plan =
    Crat.Baselines.crat ~mode:`Static (Crat.Engine.create ()) fermi a ()
  in
  check "static mode completes" true (Crat.Baselines.cycles c > 0);
  check "static opt in range" true
    (plan.Crat.Optimizer.opt_tlp >= 1
     && plan.Crat.Optimizer.opt_tlp <= plan.Crat.Optimizer.resource.Crat.Resource.max_tlp)

let test_energy_not_worse () =
  let apps = List.map small_app [ "KMN"; "CFD" ] in
  let _, comps = Crat.Experiments.fig13 (Crat.Engine.create ()) fermi apps in
  let rows = Crat.Experiments.energy comps in
  List.iter
    (fun (r : Crat.Experiments.energy_row) ->
       check (r.Crat.Experiments.abbr ^ ": energy ratio sane") true
         (r.Crat.Experiments.ratio > 0.2 && r.Crat.Experiments.ratio < 1.2))
    rows

let () =
  Alcotest.run "integration"
    [ ( "pipeline"
      , [ Alcotest.test_case "CRAT builds preserve semantics" `Slow
            test_crat_kernels_semantically_equal
        ; Alcotest.test_case "fig13 shape (small)" `Slow test_fig13_shape_small
        ; Alcotest.test_case "insensitive apps flat" `Slow test_insensitive_apps_flat
        ; Alcotest.test_case "Kepler configuration" `Slow test_kepler_runs
        ; Alcotest.test_case "shared spilling reduces local traffic" `Slow
            test_shared_spill_reduces_local_traffic
        ; Alcotest.test_case "static mode" `Slow test_static_mode_runs
        ; Alcotest.test_case "energy ratios sane" `Slow test_energy_not_worse
        ] )
    ]
