(* Tests for the GPU simulator substrate: value arithmetic, the memory
   store, caches/MSHRs/DRAM, the occupancy calculator, kernel images,
   the SIMT interpreter, the reference emulator and the timing SM. *)

module B = Ptx.Builder
module I = Ptx.Instr
module T = Ptx.Types
module G = Gpusim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- values ---------- *)

let test_value_masking () =
  let v = G.Value.truncate T.U32 (G.Value.I 0x1_FFFF_FFFFL) in
  check "u32 masks to 32 bits" true
    (Int64.equal (G.Value.to_int64 v) 0xFFFF_FFFFL);
  let s = G.Value.truncate T.S32 (G.Value.I 0xFFFF_FFFFL) in
  check "s32 sign extends" true (Int64.equal (G.Value.to_int64 s) (-1L))

let test_value_binops () =
  let i x = G.Value.I (Int64.of_int x) in
  check "u32 add wraps" true
    (Int64.equal
       (G.Value.to_int64 (G.Value.binop I.Add T.U32 (G.Value.I 0xFFFF_FFFFL) (i 1)))
       0L);
  check "s32 signed compare" true
    (G.Value.compare_values I.Lt T.S32 (G.Value.I 0xFFFF_FFFFL) (i 1));
  check "u32 unsigned compare" false
    (G.Value.compare_values I.Lt T.U32 (G.Value.I 0xFFFF_FFFFL) (i 1));
  check "div by zero yields zero" true
    (Int64.equal (G.Value.to_int64 (G.Value.binop I.Div T.U32 (i 5) (i 0))) 0L);
  check "shr logical for unsigned" true
    (Int64.equal
       (G.Value.to_int64 (G.Value.binop I.Shr T.U32 (G.Value.I 0x8000_0000L) (i 1)))
       0x4000_0000L);
  check "shr arithmetic for signed" true
    (Int64.equal
       (G.Value.to_int64 (G.Value.binop I.Shr T.S32 (G.Value.I 0xFFFF_FFFEL) (i 1)))
       (-1L))

let test_value_float () =
  let f x = G.Value.F x in
  check "f32 mad" true
    (G.Value.to_float (G.Value.mad T.F32 (f 2.) (f 3.) (f 1.)) = 7.);
  check "f32 rounding applied" true
    (G.Value.to_float (G.Value.truncate T.F32 (f 0.1)) <> 0.1);
  check "f64 keeps precision" true
    (G.Value.to_float (G.Value.truncate T.F64 (f 0.1)) = 0.1);
  check "sqrt" true (G.Value.to_float (G.Value.unop I.Sqrt T.F32 (f 4.)) = 2.)

let test_value_convert () =
  check "u32 -> f32" true
    (G.Value.to_float (G.Value.convert ~dst:T.F32 ~src:T.U32 (G.Value.I 7L)) = 7.);
  check "f32 -> u32 truncates toward zero" true
    (Int64.equal
       (G.Value.to_int64 (G.Value.convert ~dst:T.U32 ~src:T.F32 (G.Value.F 3.9)))
       3L);
  check "u32 -> u64 zero extends" true
    (Int64.equal
       (G.Value.to_int64
          (G.Value.convert ~dst:T.U64 ~src:T.U32 (G.Value.I 0xFFFF_FFFFL)))
       0xFFFF_FFFFL)

let prop_int_add_matches_reference =
  QCheck.Test.make ~count:200 ~name:"u32 arithmetic matches a reference model"
    QCheck.(pair int int)
    (fun (a, b) ->
       let open Int64 in
       let a64 = of_int a and b64 = of_int b in
       let got = G.Value.binop I.Add T.U32 (G.Value.I a64) (G.Value.I b64) in
       let expect = logand (add (logand a64 0xFFFFFFFFL) (logand b64 0xFFFFFFFFL)) 0xFFFFFFFFL in
       equal (G.Value.to_int64 got) expect)

(* ---------- memory ---------- *)

let test_memory_rw () =
  let m = G.Memory.create () in
  G.Memory.write m 100L T.F32 (G.Value.F 2.5);
  check "read back" true (G.Value.to_float (G.Memory.read m 100L T.F32) = 2.5);
  check "unwritten reads zero" true
    (G.Value.equal (G.Memory.read m 200L T.U32) G.Value.zero);
  let m2 = G.Memory.copy m in
  G.Memory.write m2 100L T.F32 (G.Value.F 9.0);
  check "copy is independent" true
    (G.Value.to_float (G.Memory.read m 100L T.F32) = 2.5)

let test_memory_arrays () =
  let m = G.Memory.create () in
  G.Memory.write_f32_array m ~base:0L [| 1.; 2.; 3. |];
  let back = G.Memory.read_f32_array m ~base:0L 3 in
  Alcotest.(check (list (float 0.0))) "round trip" [ 1.; 2.; 3. ] (Array.to_list back)

(* ---------- DRAM + cache ---------- *)

let test_dram_bandwidth_queue () =
  let d = G.Cache.Dram.create ~latency:100 ~bytes_per_cycle:16 in
  let t1 = G.Cache.Dram.request d ~cycle:0 ~bytes:128 in
  let t2 = G.Cache.Dram.request d ~cycle:0 ~bytes:128 in
  check_int "first: service 8 + latency 100" 108 t1;
  check_int "second queues behind the first" 116 t2;
  check_int "traffic recorded" 256 (G.Cache.Dram.traffic_bytes d)

let make_test_cache ?(mshrs = 4) ?(assoc = 2) ?(bytes = 1024) () =
  (* next level: fixed completion 500 cycles after request *)
  G.Cache.create ~name:"test" ~bytes ~assoc ~line:64 ~mshrs ~hit_latency:10
    ~next:(fun ~cycle ~addr ->
      ignore addr;
      G.Cache.Miss (cycle + 500))

let test_cache_hit_after_fill () =
  let c = make_test_cache () in
  (match G.Cache.access c ~cycle:0 ~addr:0L ~write:false ~write_alloc:true with
   | G.Cache.Miss t -> check_int "miss completes via next level" 500 t
   | _ -> Alcotest.fail "expected miss");
  (match G.Cache.access c ~cycle:10 ~addr:8L ~write:false ~write_alloc:true with
   | G.Cache.Miss t -> check_int "merged into in-flight line" 500 t
   | _ -> Alcotest.fail "expected merged miss");
  (match G.Cache.access c ~cycle:600 ~addr:16L ~write:false ~write_alloc:true with
   | G.Cache.Hit -> ()
   | _ -> Alcotest.fail "expected hit");
  let st = G.Cache.stats c in
  check_int "three reads" 3 st.G.Cache.reads;
  check_int "one read hit" 1 st.G.Cache.read_hits

let test_cache_lru_eviction () =
  let c = make_test_cache () in
  let touch cycle addr =
    ignore (G.Cache.access c ~cycle ~addr ~write:false ~write_alloc:true)
  in
  touch 0 0L;
  touch 1 512L;
  touch 700 0L;
  touch 710 1024L;
  (match G.Cache.access c ~cycle:1500 ~addr:0L ~write:false ~write_alloc:true with
   | G.Cache.Hit -> ()
   | _ -> Alcotest.fail "line 0 must survive");
  match G.Cache.access c ~cycle:1500 ~addr:512L ~write:false ~write_alloc:true with
  | G.Cache.Hit -> Alcotest.fail "line 512 must have been evicted"
  | G.Cache.Miss _ | G.Cache.Reserve_fail -> ()

let test_cache_mshr_exhaustion () =
  let c = make_test_cache ~mshrs:2 () in
  let miss cycle addr =
    G.Cache.access c ~cycle ~addr ~write:false ~write_alloc:true
  in
  (match miss 0 0L with G.Cache.Miss _ -> () | _ -> Alcotest.fail "m1");
  (match miss 0 64L with G.Cache.Miss _ -> () | _ -> Alcotest.fail "m2");
  (match miss 0 128L with
   | G.Cache.Reserve_fail -> ()
   | _ -> Alcotest.fail "third miss must fail reservation");
  check_int "reserve fail counted" 1 (G.Cache.stats c).G.Cache.reserve_fails;
  match miss 600 128L with
  | G.Cache.Miss _ -> ()
  | _ -> Alcotest.fail "MSHRs must drain"

let test_cache_write_through_no_alloc () =
  let c = make_test_cache () in
  (match G.Cache.access c ~cycle:0 ~addr:0L ~write:true ~write_alloc:false with
   | G.Cache.Miss _ -> ()
   | _ -> Alcotest.fail "write miss passes through");
  match G.Cache.access c ~cycle:600 ~addr:0L ~write:false ~write_alloc:true with
  | G.Cache.Miss _ -> ()
  | _ -> Alcotest.fail "no-allocate must not install the line"

let test_cache_writeback_dirty () =
  let c = make_test_cache () in
  let touch cycle addr write =
    ignore (G.Cache.access c ~cycle ~addr ~write ~write_alloc:true)
  in
  touch 0 0L true;
  touch 600 512L false;
  touch 1200 1024L false;
  touch 1800 1536L false;
  check "writeback happened" true ((G.Cache.stats c).G.Cache.writebacks >= 1)

(* ---------- occupancy ---------- *)

let fermi = G.Config.fermi

let usage ?(sregs = 0) ?(shm = 0) ~regs ~block () =
  { G.Occupancy.regs_per_thread = regs
  ; sregs_per_warp = sregs
  ; block_size = block
  ; shared_per_block = shm
  }

let test_occupancy_paper_example () =
  check_int "MinReg" 21 (G.Config.min_reg fermi);
  check_int "register-limited TLP" 5
    (G.Occupancy.max_tlp fermi (usage ~regs:48 ~block:128 ()));
  check_int "thread-limited TLP" 8
    (G.Occupancy.max_tlp fermi (usage ~regs:16 ~block:128 ()));
  check_int "shared-limited TLP" 4
    (G.Occupancy.max_tlp fermi (usage ~regs:16 ~block:128 ~shm:(12 * 1024) ()))

let test_occupancy_utilization () =
  let u = usage ~regs:32 ~block:128 () in
  let util = G.Occupancy.register_utilization fermi u ~tlp:8 in
  check "32x128x8 = full file" true (Float.abs (util -. 1.0) < 0.01);
  check_int "spare shared at tlp 4" (12 * 1024)
    (G.Occupancy.spare_shared_bytes fermi u ~tlp:4)

let limit_str u = G.Occupancy.limit_to_string (G.Occupancy.limiting_resource fermi u)

let test_limiting_resource () =
  Alcotest.(check string) "registers bind" "registers"
    (limit_str (usage ~regs:63 ~block:256 ()));
  Alcotest.(check string) "threads bind" "threads"
    (limit_str (usage ~regs:16 ~block:192 ()));
  Alcotest.(check string) "scalar registers bind" "scalar registers"
    (limit_str (usage ~regs:16 ~sregs:128 ~block:128 ()));
  Alcotest.(check string) "block slots bind" "thread blocks"
    (limit_str (usage ~regs:1 ~block:64 ()))

(* a kernel using no registers at all is limited by slots, never by the
   register file (the divide-by-zero edge) *)
let test_occupancy_zero_registers () =
  let u = usage ~regs:0 ~block:128 () in
  check_int "zero-register kernel hits the block cap"
    fermi.G.Config.max_blocks_per_sm
    (G.Occupancy.max_tlp fermi u);
  Alcotest.(check string) "zero-register limit" "thread blocks" (limit_str u);
  let us = usage ~regs:0 ~sregs:0 ~block:192 () in
  check_int "block slots still apply" 8 (G.Occupancy.max_tlp fermi us)

(* walking shared-memory usage up at fixed registers crosses from
   register-limited to shared-limited exactly when the shared constraint
   becomes the binding minimum *)
let test_occupancy_reg_shm_crossover () =
  let regs = 48 and block = 128 in
  (* register-limited at 5 blocks; shared crosses below at > 9830B *)
  Alcotest.(check string) "small shm: registers bind" "registers"
    (limit_str (usage ~regs ~block ~shm:(8 * 1024) ()));
  Alcotest.(check string) "large shm: shared binds" "shared memory"
    (limit_str (usage ~regs ~block ~shm:(12 * 1024) ()));
  check_int "crossover lowers TLP" 4
    (G.Occupancy.max_tlp fermi (usage ~regs ~block ~shm:(12 * 1024) ()))

(* property: limiting_resource is consistent with max_tlp — running one
   more block than max_tlp must violate exactly the reported dimension *)
let occupancy_consistency =
  QCheck.Test.make ~count:500
    ~name:"limiting_resource consistent with max_tlp"
    QCheck.(
      quad (int_range 0 64) (int_range 0 256) (int_range 1 8)
        (int_range 0 (50 * 1024)))
    (fun (regs, sregs, warps, shm) ->
       let block = warps * fermi.G.Config.warp_size in
       let u = usage ~regs ~sregs ~block ~shm () in
       let tlp = G.Occupancy.max_tlp fermi u in
       let next = tlp + 1 in
       let fits_threads = next * block <= fermi.G.Config.max_threads_per_sm in
       let fits_blocks = next <= fermi.G.Config.max_blocks_per_sm in
       let fits_regs =
         next * regs * block <= G.Config.registers_per_sm fermi
       in
       let fits_sregs = next * sregs * warps <= fermi.G.Config.scalar_regs_per_sm in
       let fits_shm = next * shm <= fermi.G.Config.shared_bytes_per_sm in
       (* max_tlp is maximal: one more block breaks something *)
       let maximal =
         not (fits_threads && fits_blocks && fits_regs && fits_sregs && fits_shm)
       in
       (* and the reported limit is a dimension that actually breaks *)
       let reported_breaks =
         match G.Occupancy.limiting_resource fermi u with
         | G.Occupancy.Thread_slots -> not fits_threads
         | G.Occupancy.Block_slots -> not fits_blocks
         | G.Occupancy.Registers `Vector -> not fits_regs
         | G.Occupancy.Registers `Scalar -> not fits_sregs
         | G.Occupancy.Shared_memory -> not fits_shm
       in
       maximal && reported_breaks)

(* ---------- image ---------- *)

let test_image_layout () =
  let b = B.create "img" in
  let _ = B.param b "out" T.U64 in
  let _ = B.decl_shared b "a" T.F32 16 in
  let _ = B.decl_shared b "bb" T.F64 4 in
  let _ = B.decl_local b "l" T.U32 8 in
  ignore (B.mov b T.U32 (B.imm 0));
  let k = B.finish b in
  let img = G.Image.prepare k in
  check_int "shared a at 0" 0 (G.Image.shared_offset img "a");
  check_int "shared b aligned to 8" 64 (G.Image.shared_offset img "bb");
  check_int "shared total" 96 img.G.Image.shared_decl_bytes;
  check_int "local frame" 32 img.G.Image.local_frame_bytes

let test_local_interleaving_coalesces () =
  let b = B.create "img2" in
  let _ = B.param b "out" T.U64 in
  let _ = B.decl_local b "l" T.U32 8 in
  ignore (B.mov b T.U32 (B.imm 0));
  let k = B.finish b in
  let img = G.Image.prepare k in
  let a0 = G.Image.remap_local img ~global_tid:0 (G.Image.local_addr img ~global_tid:0 ~sym_offset:0) in
  let a1 = G.Image.remap_local img ~global_tid:1 (G.Image.local_addr img ~global_tid:1 ~sym_offset:0) in
  check "consecutive threads 4B apart" true (Int64.sub a1 a0 = 4L);
  let b0 = G.Image.remap_local img ~global_tid:0 (G.Image.local_addr img ~global_tid:0 ~sym_offset:4) in
  check "slots distinct" true (not (Int64.equal b0 a1))

(* ---------- interp: divergence & barriers ---------- *)

let divergent_kernel () =
  let b = B.create "div" in
  let out = B.param b "out" T.U64 in
  let tid = B.special b Ptx.Reg.Tid_x in
  let bit = B.binop b I.And T.U32 (B.reg tid) (B.imm 1) in
  let p = B.setp b I.Eq T.U32 (B.reg bit) (B.imm 1) in
  let v = B.mov b T.U32 (B.imm 10) in
  let skip = B.fresh_label b "Ls" in
  B.bra_ifnot b p skip;
  B.acc_binop b I.Add T.U32 v (B.imm 5);
  B.label b skip;
  let base = B.ld_param b T.U64 out in
  let byte = B.mul b T.U32 (B.reg tid) (B.imm 4) in
  let o = B.cvt b T.U64 T.U32 (B.reg byte) in
  let addr = B.add b T.U64 (B.reg base) (B.reg o) in
  B.st b T.Global T.U32 (B.reg addr) 0 (B.reg v);
  B.finish b

let test_simt_divergence () =
  let k = divergent_kernel () in
  let mem = G.Memory.create () in
  let launch =
    G.Launch.make ~kernel:k ~block_size:32 ~num_blocks:1
      ~params:[ ("out", G.Value.I 0L) ] mem
  in
  G.Emulator.run launch;
  let out = G.Memory.read_u32_array mem ~base:0L 32 in
  Array.iteri
    (fun i v -> check_int (Printf.sprintf "lane %d" i) (if i land 1 = 1 then 15 else 10) v)
    out

let test_divergence_stack_mechanics () =
  let k = divergent_kernel () in
  let image = G.Image.prepare k in
  let lctx =
    { G.Interp.image
    ; global = G.Memory.create ()
    ; params = [ ("out", G.Value.I 0L) ]
    ; block_size = 32
    ; num_blocks = 1; san = None
    }
  in
  let _, warps = G.Interp.make_block lctx ~ctaid:0 ~warp_size:32 in
  let w = List.hd warps in
  check_int "full mask initially" ((1 lsl 32) - 1) (G.Interp.active_mask w);
  let saw_partial = ref false in
  while not (G.Interp.is_done w) do
    ignore (G.Interp.step w);
    if
      (not (G.Interp.is_done w))
      && G.Interp.popcount (G.Interp.active_mask w) < 32
    then saw_partial := true
  done;
  check "divergence observed" true !saw_partial

let barrier_kernel () =
  (* lane 0 of each warp publishes a value in shared memory; after the
     barrier every thread of the block reads its warp's slot *)
  let b = B.create "barrier" in
  let out = B.param b "out" T.U64 in
  let sdata = B.decl_shared b "sdata" T.U32 8 in
  let tid = B.special b Ptx.Reg.Tid_x in
  let sbase = B.mov b T.U32 sdata in
  let lane = B.binop b I.And T.U32 (B.reg tid) (B.imm 31) in
  let wid = B.binop b I.Shr T.U32 (B.reg tid) (B.imm 5) in
  let p0 = B.setp b I.Eq T.U32 (B.reg lane) (B.imm 0) in
  let skip = B.fresh_label b "Lw" in
  B.bra_ifnot b p0 skip;
  let wb = B.mul b T.U32 (B.reg wid) (B.imm 4) in
  let wa = B.add b T.U32 (B.reg sbase) (B.reg wb) in
  let v = B.add b T.U32 (B.reg wid) (B.imm 100) in
  B.st b T.Shared T.U32 (B.reg wa) 0 (B.reg v);
  B.label b skip;
  B.bar_sync b;
  let rb = B.mul b T.U32 (B.reg wid) (B.imm 4) in
  let ra = B.add b T.U32 (B.reg sbase) (B.reg rb) in
  let got = B.ld b T.Shared T.U32 (B.reg ra) 0 in
  let base = B.ld_param b T.U64 out in
  let byte = B.mul b T.U32 (B.reg tid) (B.imm 4) in
  let o = B.cvt b T.U64 T.U32 (B.reg byte) in
  let addr = B.add b T.U64 (B.reg base) (B.reg o) in
  B.st b T.Global T.U32 (B.reg addr) 0 (B.reg got);
  B.finish b

let test_barrier_communication_emulator () =
  let k = barrier_kernel () in
  let mem = G.Memory.create () in
  G.Emulator.run
    (G.Launch.make ~kernel:k ~block_size:64 ~num_blocks:1
       ~params:[ ("out", G.Value.I 0L) ] mem);
  let out = G.Memory.read_u32_array mem ~base:0L 64 in
  Array.iteri
    (fun i v -> check_int (Printf.sprintf "t%d" i) (100 + (i / 32)) v)
    out

let test_barrier_communication_sm () =
  let k = barrier_kernel () in
  let mem = G.Memory.create () in
  let st =
    G.Sm.run fermi
      (G.Launch.make ~kernel:k ~block_size:64 ~num_blocks:3 ~tlp_limit:2
         ~params:[ ("out", G.Value.I 0L) ] mem)
  in
  let out = G.Memory.read_u32_array mem ~base:0L 64 in
  Array.iteri (fun i v -> check_int (Printf.sprintf "t%d" i) (100 + (i / 32)) v) out;
  check_int "blocks completed" 3 st.G.Stats.blocks_completed

(* ---------- coalescing ---------- *)

(* 32 lanes reading consecutive f32s -> 1 segment; stride-128B reads ->
   one segment per lane *)
let coalesce_kernel ~stride_words =
  let b = B.create "coal" in
  let inp = B.param b "inp" T.U64 in
  let out = B.param b "out" T.U64 in
  let tid = B.special b Ptx.Reg.Tid_x in
  let base = B.ld_param b T.U64 inp in
  let idx = B.mul b T.U32 (B.reg tid) (B.imm (stride_words * 4)) in
  let o = B.cvt b T.U64 T.U32 (B.reg idx) in
  let addr = B.add b T.U64 (B.reg base) (B.reg o) in
  let v = B.ld b T.Global T.F32 (B.reg addr) 0 in
  let ob = B.ld_param b T.U64 out in
  let ob' = B.add b T.U64 (B.reg ob) (B.reg o) in
  B.st b T.Global T.F32 (B.reg ob') 0 (B.reg v);
  B.finish b

let run_coalesce k =
  let mem = G.Memory.create () in
  G.Sm.run fermi
    (G.Launch.make ~kernel:k ~block_size:32 ~num_blocks:1
       ~params:[ ("inp", G.Value.I 0x1000L); ("out", G.Value.I 0x80000L) ]
       mem)

let test_coalescing_segments () =
  let unit = run_coalesce (coalesce_kernel ~stride_words:1) in
  let strided = run_coalesce (coalesce_kernel ~stride_words:32) in
  (* unit stride: 1 load segment + 1 store segment *)
  check_int "unit stride coalesces" 2 unit.G.Stats.global_segments;
  (* 128B stride: every lane its own line, load + store *)
  check_int "full stride splits per lane" 64 strided.G.Stats.global_segments;
  check "stride costs cycles" true (strided.G.Stats.cycles > unit.G.Stats.cycles)

(* ---------- shared-memory bank conflicts ---------- *)

(* each lane reads shared[f(lane)]: stride 1 word -> conflict-free;
   stride = bank-count words -> full serialisation *)
let bank_kernel ~stride_words =
  let b = B.create "banks" in
  let out = B.param b "out" T.U64 in
  let sdata = B.decl_shared b "sdata" T.U32 (32 * stride_words) in
  let tid = B.special b Ptx.Reg.Tid_x in
  let sbase = B.mov b T.U32 sdata in
  let idx = B.mul b T.U32 (B.reg tid) (B.imm (stride_words * 4)) in
  let sa = B.add b T.U32 (B.reg sbase) (B.reg idx) in
  B.st b T.Shared T.U32 (B.reg sa) 0 (B.reg tid);
  let acc = B.mov b T.U32 (B.imm 0) in
  B.for_loop b ~from:(B.imm 0) ~below:(B.imm 16) ~step:1 (fun _ ->
    let v = B.ld b T.Shared T.U32 (B.reg sa) 0 in
    B.acc_binop b I.Add T.U32 acc (B.reg v));
  let base = B.ld_param b T.U64 out in
  let byte = B.mul b T.U32 (B.reg tid) (B.imm 4) in
  let o = B.cvt b T.U64 T.U32 (B.reg byte) in
  let addr = B.add b T.U64 (B.reg base) (B.reg o) in
  B.st b T.Global T.U32 (B.reg addr) 0 (B.reg acc);
  B.finish b

let run_bank_kernel k =
  let mem = G.Memory.create () in
  G.Sm.run fermi
    (G.Launch.make ~kernel:k ~block_size:32 ~num_blocks:1
       ~params:[ ("out", G.Value.I 0L) ] mem)

let test_bank_conflicts_detected () =
  let clean = run_bank_kernel (bank_kernel ~stride_words:1) in
  let conflicted = run_bank_kernel (bank_kernel ~stride_words:32) in
  check_int "stride 1 is conflict-free" 0 clean.G.Stats.shared_bank_conflicts;
  check "stride 32 serialises" true
    (conflicted.G.Stats.shared_bank_conflicts > 100);
  check "conflicts cost cycles" true
    (conflicted.G.Stats.cycles > clean.G.Stats.cycles)

let test_spill_layout_padding () =
  (* two 4-byte shared slots would give an 8-byte (even-word) stride:
     layout must pad it to an odd word count *)
  let regs = [ Ptx.Reg.make 0 T.F32; Ptx.Reg.make 1 T.U32 ] in
  let spec = Regalloc.Spill.layout ~to_shared:(fun _ -> true) regs in
  check "odd word stride" true
    (spec.Regalloc.Spill.shared_bytes_per_thread / 4 mod 2 = 1)

(* ---------- timing sim ---------- *)

let test_sm_matches_emulator () =
  let app = Workloads.Suite.find "PATH" in
  let k = Workloads.App.kernel app in
  let input =
    { (Workloads.App.default_input app) with Workloads.App.num_blocks = 2 }
  in
  let m_ref =
    G.Emulator.run_to_memory
      (G.Launch.make ~kernel:k ~block_size:app.Workloads.App.block_size
         ~num_blocks:2 ~params:(Workloads.App.params app input)
         (Workloads.App.memory app input))
  in
  let launch = Workloads.App.launch app ~tlp:2 ~input () in
  let _ = G.Sm.run fermi launch in
  let n = Workloads.App.output_words app input in
  let a = G.Memory.read_f32_array m_ref ~base:Workloads.Data.out_base n in
  let b' = G.Memory.read_f32_array launch.G.Launch.memory ~base:Workloads.Data.out_base n in
  check "timing sim computes the same outputs" true (Testsupport.Gen.outputs_equal a b')

let test_sm_deterministic () =
  let app = Workloads.Suite.find "GAU" in
  let input = { (Workloads.App.default_input app) with Workloads.App.num_blocks = 2 } in
  let run () = (G.Sm.run fermi (Workloads.App.launch app ~tlp:2 ~input ())).G.Stats.cycles in
  check_int "same cycles on repeat" (run ()) (run ())

let test_sm_tlp_limit_respected () =
  let app = Workloads.Suite.find "GAU" in
  let input = { (Workloads.App.default_input app) with Workloads.App.num_blocks = 6 } in
  let st = G.Sm.run fermi (Workloads.App.launch app ~tlp:2 ~input ()) in
  check "never more than 2 blocks" true (st.G.Stats.max_concurrent_blocks <= 2);
  check_int "all blocks ran" 6 st.G.Stats.blocks_completed

let test_sm_more_tlp_not_slower_for_insensitive () =
  let app = Workloads.Suite.find "GAU" in
  let input = { (Workloads.App.default_input app) with Workloads.App.num_blocks = 4 } in
  let c tlp = (G.Sm.run fermi (Workloads.App.launch app ~tlp ~input ())).G.Stats.cycles in
  check "tlp 4 at least as fast as tlp 1 on a light kernel" true (c 4 <= c 1)

let test_sm_gto_vs_lrr () =
  let app = Workloads.Suite.find "PATH" in
  let input = { (Workloads.App.default_input app) with Workloads.App.num_blocks = 2 } in
  let gto = G.Sm.run ~scheduler:`Gto fermi (Workloads.App.launch app ~tlp:2 ~input ()) in
  let lrr = G.Sm.run ~scheduler:`Lrr fermi (Workloads.App.launch app ~tlp:2 ~input ()) in
  check_int "same instructions" gto.G.Stats.warp_instrs lrr.G.Stats.warp_instrs

let test_cycle_limit_raised () =
  let app = Workloads.Suite.find "PATH" in
  let input = { (Workloads.App.default_input app) with Workloads.App.num_blocks = 2 } in
  try
    let _ = G.Sm.run ~max_cycles:10 fermi (Workloads.App.launch app ~tlp:1 ~input ()) in
    Alcotest.fail "must raise Cycle_limit"
  with G.Sm.Cycle_limit _ -> ()

let prop_emulator_vs_sm =
  QCheck.Test.make ~count:15 ~name:"timing sim output equals emulator output"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let mem1 = G.Memory.create () in
      G.Memory.write_f32_array mem1 ~base:0x1000_0000L
        (Workloads.Data.uniform_f32 ~seed:5 1024);
      let mem2 = G.Memory.copy mem1 in
      let params =
        [ ("inp", G.Value.I 0x1000_0000L)
        ; ("out", G.Value.I 0x2000_0000L)
        ; ("n", G.Value.of_int 1024)
        ]
      in
      G.Emulator.run
        (G.Launch.make ~kernel:k ~block_size:64 ~num_blocks:2 ~params mem1);
      let _ =
        G.Sm.run fermi
          (G.Launch.make ~kernel:k ~block_size:64 ~num_blocks:2 ~tlp_limit:2
             ~params mem2)
      in
      Testsupport.Gen.outputs_equal
        (G.Memory.read_f32_array mem1 ~base:0x2000_0000L 128)
        (G.Memory.read_f32_array mem2 ~base:0x2000_0000L 128))

(* ---------- dynamic throttling ---------- *)

let test_dynamic_tlp_correct () =
  let app = Workloads.Suite.find "KMN" in
  let input = { (Workloads.App.default_input app) with Workloads.App.num_blocks = 4 } in
  let k = Workloads.App.kernel app in
  let m_ref =
    G.Emulator.run_to_memory
      (G.Launch.make ~kernel:k ~block_size:app.Workloads.App.block_size
         ~num_blocks:4 ~params:(Workloads.App.params app input)
         (Workloads.App.memory app input))
  in
  let launch = Workloads.App.launch app ~tlp:4 ~input () in
  let st = G.Sm.run ~dynamic_tlp:true fermi launch in
  check_int "all blocks completed despite pausing" 4 st.G.Stats.blocks_completed;
  let n = Workloads.App.output_words app input in
  check "outputs unaffected by throttling" true
    (Testsupport.Gen.outputs_equal
       (G.Memory.read_f32_array m_ref ~base:Workloads.Data.out_base n)
       (G.Memory.read_f32_array launch.G.Launch.memory ~base:Workloads.Data.out_base n))

let test_dynamic_tlp_helps_thrashing () =
  let app = Workloads.Suite.find "KMN" in
  let input = Workloads.App.default_input app in
  let run dyn =
    (G.Sm.run ~dynamic_tlp:dyn fermi (Workloads.App.launch app ~tlp:5 ~input ()))
      .G.Stats.cycles
  in
  check "throttling helps the thrashing kernel" true (run true < run false)

(* ---------- multi-SM ---------- *)

let test_gpu_multi_sm_correct () =
  let app = Workloads.Suite.find "GAU" in
  let input = { (Workloads.App.default_input app) with Workloads.App.num_blocks = 8 } in
  let k = Workloads.App.kernel app in
  (* reference: emulator over all 8 blocks *)
  let m_ref =
    G.Emulator.run_to_memory
      (G.Launch.make ~kernel:k ~block_size:app.Workloads.App.block_size
         ~num_blocks:8 ~params:(Workloads.App.params app input)
         (Workloads.App.memory app input))
  in
  let mem = Workloads.App.memory app input in
  let r =
    G.Gpu.run ~sms:4 fermi
      (G.Launch.make ~kernel:k ~block_size:app.Workloads.App.block_size
         ~num_blocks:8 ~params:(Workloads.App.params app input) mem)
  in
  let n = Workloads.App.output_words app input in
  check "multi-SM outputs match the emulator" true
    (Testsupport.Gen.outputs_equal
       (G.Memory.read_f32_array m_ref ~base:Workloads.Data.out_base n)
       (G.Memory.read_f32_array mem ~base:Workloads.Data.out_base n));
  check_int "all blocks ran once" 8
    (Array.fold_left (fun acc s -> acc + s.G.Stats.blocks_completed) 0 r.G.Gpu.per_sm)

let test_gpu_scaling () =
  let app = Workloads.Suite.find "GAU" in
  let input = { (Workloads.App.default_input app) with Workloads.App.num_blocks = 8 } in
  let k = Workloads.App.kernel app in
  let cycles sms =
    let mem = Workloads.App.memory app input in
    (G.Gpu.run ~sms fermi
       (G.Launch.make ~kernel:k ~block_size:app.Workloads.App.block_size
          ~num_blocks:8 ~tlp_limit:2
          ~params:(Workloads.App.params app input) mem))
      .G.Gpu.total_cycles
  in
  check "4 SMs at least as fast as 1" true (cycles 4 <= cycles 1)

let test_gpu_deterministic () =
  let app = Workloads.Suite.find "PATH" in
  let input = { (Workloads.App.default_input app) with Workloads.App.num_blocks = 6 } in
  let run () =
    let mem = Workloads.App.memory app input in
    (G.Gpu.run ~sms:3 fermi
       (G.Launch.make ~kernel:(Workloads.App.kernel app)
          ~block_size:app.Workloads.App.block_size ~num_blocks:6
          ~params:(Workloads.App.params app input) mem))
      .G.Gpu.total_cycles
  in
  check_int "deterministic across runs" (run ()) (run ())

(* ---------- trace ---------- *)

let test_trace_records_execution () =
  let app = Workloads.Suite.find "GAU" in
  let input = { (Workloads.App.default_input app) with Workloads.App.num_blocks = 1 } in
  let entries =
    G.Trace.warp_trace ~max_steps:50 ~ctaid:0 ~warp:0
      (Workloads.App.launch app ~input ())
  in
  check_int "capped at max_steps" 50 (List.length entries);
  let first = List.hd entries in
  check_int "starts at pc 0" 0 first.G.Trace.pc;
  check "full mask at entry" true (first.G.Trace.mask = (1 lsl 32) - 1);
  (* pc strictly increases through the straight-line prologue *)
  let rec prologue_ordered = function
    | a :: b :: rest when b.G.Trace.pc = a.G.Trace.pc + 1 ->
      prologue_ordered (b :: rest)
    | _ -> true
  in
  check "prologue in order" true (prologue_ordered entries)

let () =
  Alcotest.run "gpusim"
    [ ( "values"
      , [ Alcotest.test_case "masking" `Quick test_value_masking
        ; Alcotest.test_case "integer binops" `Quick test_value_binops
        ; Alcotest.test_case "float ops" `Quick test_value_float
        ; Alcotest.test_case "conversions" `Quick test_value_convert
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_int_add_matches_reference ] )
    ; ( "memory"
      , [ Alcotest.test_case "read/write" `Quick test_memory_rw
        ; Alcotest.test_case "arrays" `Quick test_memory_arrays
        ] )
    ; ( "cache"
      , [ Alcotest.test_case "dram queue" `Quick test_dram_bandwidth_queue
        ; Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill
        ; Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction
        ; Alcotest.test_case "MSHR exhaustion" `Quick test_cache_mshr_exhaustion
        ; Alcotest.test_case "write-through no-alloc" `Quick test_cache_write_through_no_alloc
        ; Alcotest.test_case "dirty writeback" `Quick test_cache_writeback_dirty
        ] )
    ; ( "occupancy"
      , [ Alcotest.test_case "paper examples" `Quick test_occupancy_paper_example
        ; Alcotest.test_case "utilization" `Quick test_occupancy_utilization
        ; Alcotest.test_case "limiting resource" `Quick test_limiting_resource
        ; Alcotest.test_case "zero registers" `Quick test_occupancy_zero_registers
        ; Alcotest.test_case "reg/shm crossover" `Quick
            test_occupancy_reg_shm_crossover
        ; QCheck_alcotest.to_alcotest occupancy_consistency
        ] )
    ; ( "image"
      , [ Alcotest.test_case "declaration layout" `Quick test_image_layout
        ; Alcotest.test_case "local interleaving" `Quick test_local_interleaving_coalesces
        ] )
    ; ( "coalescing"
      , [ Alcotest.test_case "segment counts" `Quick test_coalescing_segments ] )
    ; ( "banks"
      , [ Alcotest.test_case "conflicts detected and costed" `Quick
            test_bank_conflicts_detected
        ; Alcotest.test_case "spill layout padding" `Quick test_spill_layout_padding
        ] )
    ; ( "simt"
      , [ Alcotest.test_case "divergence result" `Quick test_simt_divergence
        ; Alcotest.test_case "divergence stack" `Quick test_divergence_stack_mechanics
        ; Alcotest.test_case "barrier (emulator)" `Quick test_barrier_communication_emulator
        ; Alcotest.test_case "barrier (timing sim)" `Quick test_barrier_communication_sm
        ] )
    ; ( "trace"
      , [ Alcotest.test_case "records execution" `Quick test_trace_records_execution ] )
    ; ( "dynamic-tlp"
      , [ Alcotest.test_case "correct under pausing" `Quick test_dynamic_tlp_correct
        ; Alcotest.test_case "helps thrashing kernels" `Slow
            test_dynamic_tlp_helps_thrashing
        ] )
    ; ( "multi-sm"
      , [ Alcotest.test_case "correct across SMs" `Quick test_gpu_multi_sm_correct
        ; Alcotest.test_case "scaling helps" `Quick test_gpu_scaling
        ; Alcotest.test_case "deterministic" `Quick test_gpu_deterministic
        ] )
    ; ( "timing"
      , [ Alcotest.test_case "matches emulator" `Quick test_sm_matches_emulator
        ; Alcotest.test_case "deterministic" `Quick test_sm_deterministic
        ; Alcotest.test_case "TLP limit respected" `Quick test_sm_tlp_limit_respected
        ; Alcotest.test_case "parallelism helps light kernels" `Quick
            test_sm_more_tlp_not_slower_for_insensitive
        ; Alcotest.test_case "GTO vs LRR" `Quick test_sm_gto_vs_lrr
        ; Alcotest.test_case "cycle limit" `Quick test_cycle_limit_raised
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_emulator_vs_sm ] )
    ]
