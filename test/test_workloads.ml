(* Tests for the synthetic workload suite: every application's kernel is
   well-formed, executable, deterministic, and has the resource profile
   its descriptor promises. *)

module T = Ptx.Types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny_input (a : Workloads.App.t) =
  let i = Workloads.App.default_input a in
  { i with Workloads.App.num_blocks = 2; iters = min 2 i.Workloads.App.iters
  ; passes = min 2 i.Workloads.App.passes }

let test_suite_shape () =
  check_int "22 applications" 22 (List.length Workloads.Suite.all);
  check_int "11 sensitive" 11 (List.length Workloads.Suite.sensitive);
  check_int "11 insensitive" 11 (List.length Workloads.Suite.insensitive);
  let abbrs = Workloads.Suite.abbrs in
  check_int "abbreviations unique" (List.length abbrs)
    (List.length (List.sort_uniq compare abbrs))

let test_find () =
  let a = Workloads.Suite.find "CFD" in
  Alcotest.(check string) "kernel name" "cuda_compute_flux" a.Workloads.App.kernel_name;
  (try
     let _ = Workloads.Suite.find "NOPE" in
     Alcotest.fail "unknown abbr must raise"
   with Not_found -> ())

let test_all_kernels_validate () =
  List.iter
    (fun a ->
       let k = Workloads.App.kernel a in
       match Ptx.Kernel.validate k with
       | Ok () -> ()
       | Error m -> Alcotest.failf "%s: %s" a.Workloads.App.abbr m)
    Workloads.Suite.all

let test_all_kernels_roundtrip () =
  List.iter
    (fun a ->
       let k = Workloads.App.kernel a in
       let s = Ptx.Printer.kernel_to_string k in
       let k2 = Ptx.Parser.parse_kernel_exn s in
       Alcotest.(check string)
         (a.Workloads.App.abbr ^ " round-trips")
         s
         (Ptx.Printer.kernel_to_string k2))
    Workloads.Suite.all

let test_kernel_deterministic () =
  List.iter
    (fun a ->
       let s1 = Ptx.Printer.kernel_to_string (Workloads.App.kernel a) in
       let s2 = Ptx.Printer.kernel_to_string (Workloads.App.kernel a) in
       Alcotest.(check string) (a.Workloads.App.abbr ^ " deterministic") s1 s2)
    Workloads.Suite.all

let test_block_sizes_warp_multiple () =
  List.iter
    (fun a ->
       check
         (a.Workloads.App.abbr ^ " block multiple of 32")
         true
         (a.Workloads.App.block_size mod 32 = 0))
    Workloads.Suite.all

let test_register_demand_bands () =
  (* sensitive apps were tuned for higher pressure than insensitive *)
  let pressure a =
    let flow = Cfg.Flow.of_kernel (Workloads.App.kernel a) in
    Cfg.Liveness.max_pressure (Cfg.Liveness.compute flow)
  in
  List.iter
    (fun a ->
       let p = pressure a in
       check (a.Workloads.App.abbr ^ " insensitive pressure < 36") true (p < 36))
    Workloads.Suite.insensitive;
  let heavy = List.map Workloads.Suite.find [ "CFD"; "FDTD"; "STE"; "DTC" ] in
  List.iter
    (fun a ->
       let p = pressure a in
       check (a.Workloads.App.abbr ^ " pressure above hardware cap") true (p > 63))
    heavy

let test_shared_decls_match_descriptor () =
  List.iter
    (fun a ->
       check_int
         (a.Workloads.App.abbr ^ " shared bytes")
         (a.Workloads.App.shm_words * 4)
         (Workloads.App.shared_decl_bytes a))
    Workloads.Suite.all

let test_all_apps_emulate () =
  List.iter
    (fun a ->
       let i = tiny_input a in
       let mem = Workloads.App.memory a i in
       let launch =
         Gpusim.Launch.make ~kernel:(Workloads.App.kernel a)
           ~block_size:a.Workloads.App.block_size
           ~num_blocks:i.Workloads.App.num_blocks
           ~params:(Workloads.App.params a i) mem
       in
       Gpusim.Emulator.run launch;
       let out =
         Gpusim.Memory.read_f32_array mem ~base:Workloads.Data.out_base
           (Workloads.App.output_words a i)
       in
       (* reductions write per-block results; everyone else per-thread *)
       let nonzero = Array.exists (fun v -> v <> 0.0) out in
       check (a.Workloads.App.abbr ^ " produced output") true nonzero;
       check
         (a.Workloads.App.abbr ^ " output finite")
         true
         (Array.for_all (fun v -> Float.is_finite v) out))
    Workloads.Suite.all

let test_data_deterministic () =
  let a = Workloads.Suite.find "CFD" in
  let m1 = Workloads.App.memory a (tiny_input a) in
  let m2 = Workloads.App.memory a (tiny_input a) in
  check "same seed, same memory" true (Gpusim.Memory.equal m1 m2);
  let x = Workloads.Data.uniform_f32 ~seed:3 16 in
  let y = Workloads.Data.uniform_f32 ~seed:3 16 in
  check "uniform_f32 deterministic" true (x = y);
  check "values in [0,1)" true (Array.for_all (fun v -> v >= 0. && v < 1.) x);
  let u = Workloads.Data.uniform_u32 ~seed:4 ~bound:7 32 in
  check "u32 bounded" true (Array.for_all (fun v -> v >= 0 && v < 7) u)

let test_inputs_unique_labels () =
  List.iter
    (fun (a : Workloads.App.t) ->
       let labels = List.map (fun i -> i.Workloads.App.ilabel) a.Workloads.App.inputs in
       check_int (a.Workloads.App.abbr ^ " labels unique") (List.length labels)
         (List.length (List.sort_uniq compare labels));
       check (a.Workloads.App.abbr ^ " has default") true
         (List.mem "default" labels))
    Workloads.Suite.all

let test_input_sensitivity_apps_have_variants () =
  List.iter
    (fun abbr ->
       let a = Workloads.Suite.find abbr in
       check (abbr ^ " has several inputs") true
         (List.length a.Workloads.App.inputs >= 3))
    [ "CFD"; "BLK" ]

let test_gather_uses_aux () =
  let a = Workloads.Suite.find "SPMV" in
  let i = tiny_input a in
  check "aux param bound" true
    (List.mem_assoc "aux" (Workloads.App.params a i))

let () =
  Alcotest.run "workloads"
    [ ( "suite"
      , [ Alcotest.test_case "shape" `Quick test_suite_shape
        ; Alcotest.test_case "find" `Quick test_find
        ; Alcotest.test_case "unique input labels" `Quick test_inputs_unique_labels
        ; Alcotest.test_case "fig18 apps have variants" `Quick
            test_input_sensitivity_apps_have_variants
        ] )
    ; ( "kernels"
      , [ Alcotest.test_case "all validate" `Quick test_all_kernels_validate
        ; Alcotest.test_case "all round-trip" `Quick test_all_kernels_roundtrip
        ; Alcotest.test_case "deterministic" `Quick test_kernel_deterministic
        ; Alcotest.test_case "block sizes" `Quick test_block_sizes_warp_multiple
        ; Alcotest.test_case "register-demand bands" `Quick test_register_demand_bands
        ; Alcotest.test_case "shared decls" `Quick test_shared_decls_match_descriptor
        ] )
    ; ( "execution"
      , [ Alcotest.test_case "all apps emulate" `Slow test_all_apps_emulate
        ; Alcotest.test_case "deterministic data" `Quick test_data_deterministic
        ; Alcotest.test_case "gather uses aux" `Quick test_gather_uses_aux
        ] )
    ]
