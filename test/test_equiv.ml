(* Tests for lib/equiv: the symbolic translation validator proves all
   three transformation edges on the whole workload suite (including
   spill-inserting allocations and the machine backend), refutes the
   seeded miscompile corpus with witnesses that replay as genuine
   divergences, and never reports a refutation whose witness does not
   replay. *)

module Check = Equiv.Check
module Witness = Equiv.Witness
module Corpus = Equiv.Corpus

let check = Alcotest.(check bool)

let proved (o : Check.outcome) =
  match o.Check.verdict with
  | Check.Proved -> true
  | _ -> false

let fail_outcome tag (o : Check.outcome) =
  Alcotest.failf "%s: expected proved, got %s" tag
    (Format.asprintf "%a" Check.pp_outcome o)

let require_proved tag o = if not (proved o) then fail_outcome tag o

(* ---------- acceptance sweep: every workload, every edge ---------- *)

let sweep_app (app : Workloads.App.t) =
  let abbr = app.Workloads.App.abbr in
  let block_size = app.Workloads.App.block_size in
  let k = Workloads.App.kernel app in
  let k', _ = Ptxopt.Pipeline.run ~intfold:true ~block_size k in
  require_proved (abbr ^ " opt")
    (Check.check_opt ~block_size ~left:k ~right:k' ());
  let a =
    Regalloc.Allocator.allocate ~block_size
      ~reg_limit:app.Workloads.App.default_regs k
  in
  require_proved (abbr ^ " alloc") (Check.check_alloc a);
  (* a tight budget forces spill code on every workload; the edge must
     still prove through the slot environment *)
  let tight = Regalloc.Allocator.allocate ~block_size ~reg_limit:16 k in
  check (abbr ^ " tight limit spills") true
    (Regalloc.Allocator.(tight.spilled) <> []);
  require_proved (abbr ^ " alloc/spilled") (Check.check_alloc tight);
  require_proved (abbr ^ " lower") (Check.check_lower (Machine.Lower.run a));
  require_proved (abbr ^ " lower/spilled")
    (Check.check_lower (Machine.Lower.run tight))

let test_sweep () = List.iter sweep_app Workloads.Suite.all

let test_shared_spills () =
  List.iter
    (fun abbr ->
      let app = Workloads.Suite.find abbr in
      let block_size = app.Workloads.App.block_size in
      let a =
        Regalloc.Allocator.allocate ~shared_policy:(`Spare 2048) ~block_size
          ~reg_limit:16
          (Workloads.App.kernel app)
      in
      check (abbr ^ " uses shared spills") true
        (a.Regalloc.Allocator.stats.Regalloc.Spill.num_shared > 0);
      require_proved (abbr ^ " alloc/shared-spill") (Check.check_alloc a))
    [ "CFD"; "SPMV" ]

let test_linear_scan () =
  let app = Workloads.Suite.find "HST" in
  let a =
    Regalloc.Allocator.allocate ~strategy:Regalloc.Allocator.Linear_scan
      ~block_size:app.Workloads.App.block_size ~reg_limit:16
      (Workloads.App.kernel app)
  in
  require_proved "HST alloc/linear-scan" (Check.check_alloc a)

(* ---------- corpus: seeded miscompiles must be refuted ---------- *)

let corpus_case (c : Corpus.case) () =
  let o = Corpus.outcome_of c in
  match o.Check.verdict with
  | Check.Refuted w ->
    let left, right = Corpus.runners c in
    (match Witness.replay ~left ~right w with
     | Some _ -> ()
     | None ->
       Alcotest.failf "corpus %s: witness does not replay" c.Corpus.label);
    let diags = Verify.Equiv_check.diagnostics_of o in
    check (c.Corpus.label ^ " reports " ^ c.Corpus.expect) true
      (List.exists
         (fun d ->
           d.Verify.Diagnostic.code = c.Corpus.expect
           && Verify.Diagnostic.is_error d)
         diags)
  | _ ->
    Alcotest.failf "corpus %s: expected a refutation, got %s" c.Corpus.label
      (Format.asprintf "%a" Check.pp_outcome o)

let corpus_tests =
  List.map
    (fun (c : Corpus.case) ->
      Alcotest.test_case
        (Printf.sprintf "%s refuted with %s" c.Corpus.label c.Corpus.expect)
        `Quick (corpus_case c))
    (Corpus.cases ())

(* ---------- no false refutations: every witness must diverge ---------- *)

(* Whatever the sampling salt, a witness returned by the search replays
   as a genuine divergence on the exact recorded input — a refutation is
   never an artifact of the sampler. *)
let prop_witness_replays =
  QCheck.Test.make ~count:25 ~name:"every witness replays as a divergence"
    QCheck.(pair (int_bound 1000) (int_bound 1))
    (fun (salt, which) ->
      let c = List.nth (Corpus.cases ()) which in
      let left, right = Corpus.runners c in
      let block_size, params_ty =
        match c.Corpus.subject with
        | Corpus.Opt_pair { block_size; left = k; _ } ->
          (block_size, k.Ptx.Kernel.params)
        | Corpus.Allocation a ->
          ( a.Regalloc.Allocator.block_size
          , a.Regalloc.Allocator.original.Ptx.Kernel.params )
      in
      match
        Witness.search ~left ~right ~block_size ~salt ~params_ty ~seeds:[] ()
      with
      | Some w -> Witness.replay ~left ~right w <> None
      | None -> QCheck.assume_fail ())

(* An equivalent pair must never yield a witness, whatever the salt. *)
let prop_no_witness_when_equal =
  QCheck.Test.make ~count:10 ~name:"no witness separates an identical pair"
    QCheck.(int_bound 1000)
    (fun salt ->
      let k =
        match (List.hd (Corpus.cases ())).Corpus.subject with
        | Corpus.Opt_pair { left; _ } -> left
        | Corpus.Allocation a -> a.Regalloc.Allocator.original
      in
      Witness.search ~left:(Witness.Run_kernel k)
        ~right:(Witness.Run_kernel k) ~block_size:64 ~salt
        ~params_ty:k.Ptx.Kernel.params ~seeds:[] ()
      = None)

(* ---------- intfold default and the pipeline gate ---------- *)

let test_intfold_default () =
  let app = Workloads.Suite.find "GAU" in
  let block_size = app.Workloads.App.block_size in
  let k = Workloads.App.kernel app in
  let kd, rd = Ptxopt.Pipeline.run ~block_size k in
  let ke, re = Ptxopt.Pipeline.run ~intfold:true ~block_size k in
  check "default equals explicit intfold:true" true
    (Ptx.Kernel.instr_count kd = Ptx.Kernel.instr_count ke
    && rd.Ptxopt.Pipeline.folded = re.Ptxopt.Pipeline.folded);
  let _, ro = Ptxopt.Pipeline.run ~intfold:false ~block_size k in
  check "intfold:false is an opt-out" true
    (ro.Ptxopt.Pipeline.folded <= rd.Ptxopt.Pipeline.folded)

let test_gate_rejects_refuted_edge () =
  let pair =
    List.find_map
      (fun (c : Corpus.case) ->
        match c.Corpus.subject with
        | Corpus.Opt_pair { block_size; left; right } ->
          Some (block_size, left, right)
        | _ -> None)
      (Corpus.cases ())
  in
  let block_size, left, right = Option.get pair in
  let checks =
    [ Verify.Gate.Equiv { block_size; num_blocks = None; left; right } ]
  in
  (* disabled: a no-op even on a miscompiled edge *)
  Verify.Gate.set false;
  Verify.Gate.run ~stage:"test" checks;
  Verify.Gate.set true;
  let rejected =
    match Verify.Gate.run ~stage:"test" checks with
    | () -> false
    | exception Verify.Gate.Rejected ("test", ds) ->
      List.exists (fun d -> d.Verify.Diagnostic.code = "E201") ds
  in
  Verify.Gate.clear ();
  check "armed gate rejects with E201" true rejected

let test_codes_documented () =
  List.iter
    (fun code ->
      check (code ^ " documented") true
        (Verify.Diagnostic.describe code <> "unknown diagnostic code"))
    [ "E101"; "E201"; "E301" ]

let () =
  Alcotest.run "equiv"
    [ ( "sweep"
      , [ Alcotest.test_case "all 22 workloads prove on all three edges"
            `Slow test_sweep
        ; Alcotest.test_case "shared-policy spills prove" `Quick
            test_shared_spills
        ; Alcotest.test_case "linear-scan allocations prove" `Quick
            test_linear_scan
        ] )
    ; ("corpus", corpus_tests)
    ; ( "witness"
      , [ QCheck_alcotest.to_alcotest prop_witness_replays
        ; QCheck_alcotest.to_alcotest prop_no_witness_when_equal
        ] )
    ; ( "wiring"
      , [ Alcotest.test_case "intfold defaults on" `Quick test_intfold_default
        ; Alcotest.test_case "gate rejects a refuted edge" `Quick
            test_gate_rejects_refuted_edge
        ; Alcotest.test_case "E-codes documented" `Quick test_codes_documented
        ] )
    ]
