(** QCheck generators for random-but-valid PTX kernels, plus shared
    helpers for differential testing. *)

val kernel :
  ?max_ops:int -> ?with_loop:bool -> ?with_branch:bool -> ?with_shared:bool ->
  unit -> Ptx.Kernel.t QCheck.Gen.t
(** Random kernels over parameters [inp]/[out] (u64 pointers) and [n]
    (u32): u32/f32 arithmetic chains over previously defined registers,
    global loads from bounded indices, conditional accumulation and an
    optional counted loop; always ends storing a result to
    [out[gtid]]. Every generated kernel passes {!Ptx.Kernel.validate}.
    [with_shared] (default off) adds a shared tile with a provably-safe
    affine store, an interval-bounded load, and a data-dependent store
    whose index can really escape the array — sanitizer fodder. *)

val arbitrary_kernel : Ptx.Kernel.t QCheck.arbitrary
(** With a printer attached (PTX text). *)

val run_emulated :
  ?block_size:int -> ?num_blocks:int -> Ptx.Kernel.t -> float array
(** Emulate the kernel on a deterministic input image and return the
    output buffer (one f32 per thread). *)

val outputs_equal : float array -> float array -> bool
(** Bitwise equality per element (deterministic arithmetic). *)
