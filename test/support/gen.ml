module B = Ptx.Builder
module I = Ptx.Instr
module T = Ptx.Types

(* A random kernel is driven by an opcode array: each entry picks an
   operation and its operands from the pools of already-defined
   registers, so any array yields a valid kernel (good shrinking). *)

type plan =
  { ops : int array
  ; loop : bool
  ; branch : bool
  ; shared : bool
  }

let build_from_plan plan =
  let b = B.create "qcheck_kernel" in
  let inp = B.param b "inp" T.U64 in
  let out = B.param b "out" T.U64 in
  let n = B.param b "n" T.U32 in
  let tid = B.global_tid_x b in
  let nval = B.ld_param b T.U32 n in
  let inp64 = B.ld_param b T.U64 inp in
  let out64 = B.ld_param b T.U64 out in
  let u32s = ref [ tid; nval ] in
  let f32s = ref [ B.mov b T.F32 (B.fimm 1.5) ] in
  let pick pool i = List.nth pool (i mod List.length pool) in
  let load_bounded idx_reg =
    let idx = B.binop b I.And T.U32 (B.reg idx_reg) (B.imm 1023) in
    let bytes = B.mul b T.U32 (B.reg idx) (B.imm 4) in
    let o64 = B.cvt b T.U64 T.U32 (B.reg bytes) in
    let addr = B.add b T.U64 (B.reg inp64) (B.reg o64) in
    B.ld b T.Global T.F32 (B.reg addr) 0
  in
  let apply_op code =
    let sel = code mod 8 in
    let x = code / 8 in
    match sel with
    | 0 ->
      let ops = [| I.Add; I.Sub; I.Mul_lo; I.Min; I.Max; I.And; I.Or; I.Xor |] in
      let r =
        B.binop b ops.(x mod 8) T.U32
          (B.reg (pick !u32s (x / 8)))
          (B.reg (pick !u32s (x / 64)))
      in
      u32s := r :: !u32s
    | 1 ->
      let r = B.binop b I.Add T.U32 (B.reg (pick !u32s x)) (B.imm ((x mod 13) + 1)) in
      u32s := r :: !u32s
    | 2 ->
      let ops = [| I.Add; I.Sub; I.Mul_lo; I.Min; I.Max |] in
      let r =
        B.binop b ops.(x mod 5) T.F32
          (B.reg (pick !f32s (x / 5)))
          (B.reg (pick !f32s (x / 40)))
      in
      f32s := r :: !f32s
    | 3 ->
      let r =
        B.mad b T.F32
          (B.reg (pick !f32s x))
          (B.fimm 0.5)
          (B.reg (pick !f32s (x / 7)))
      in
      f32s := r :: !f32s
    | 4 ->
      let a = B.unop b I.Abs T.F32 (B.reg (pick !f32s x)) in
      let a1 = B.add b T.F32 (B.reg a) (B.fimm 1.0) in
      let r = B.unop b I.Sqrt T.F32 (B.reg a1) in
      f32s := r :: !f32s
    | 5 -> f32s := load_bounded (pick !u32s x) :: !f32s
    | 6 ->
      let r = B.cvt b T.F32 T.U32 (B.reg (pick !u32s x)) in
      f32s := r :: !f32s
    | 7 ->
      let p =
        B.setp b I.Lt T.U32 (B.reg (pick !u32s x)) (B.reg (pick !u32s (x / 3)))
      in
      let r =
        B.selp b T.F32
          (B.reg (pick !f32s x))
          (B.reg (pick !f32s (x / 5)))
          p
      in
      f32s := r :: !f32s
    | _ -> assert false
  in
  (* optional shared-memory tile: one provably-safe affine store, one
     interval-bounded load, and one data-dependent store whose index
     can really escape the array — the hybrid sanitizer must prove the
     first two and keep (and, at runtime, trip) a check on the third *)
  if plan.shared then begin
    let sdata = B.decl_shared b "sdata" T.B32 256 in
    let sbase = B.mov b T.U64 sdata in
    let tidb = B.special b Ptx.Reg.Tid_x in
    let safe_addr =
      let bytes = B.mul b T.U32 (B.reg tidb) (B.imm 4) in
      let o64 = B.cvt b T.U64 T.U32 (B.reg bytes) in
      B.add b T.U64 (B.reg sbase) (B.reg o64)
    in
    B.st b T.Shared T.U32 (B.reg safe_addr) 0 (B.reg tidb);
    let masked_addr =
      let idx = B.binop b I.And T.U32 (B.reg (pick !u32s 3)) (B.imm 63) in
      let bytes = B.mul b T.U32 (B.reg idx) (B.imm 4) in
      let o64 = B.cvt b T.U64 T.U32 (B.reg bytes) in
      B.add b T.U64 (B.reg sbase) (B.reg o64)
    in
    u32s := B.ld b T.Shared T.U32 (B.reg masked_addr) 0 :: !u32s;
    let wild_addr =
      (* & 2047 bounds the offset to 8188B — well past the 1024B array *)
      let idx = B.binop b I.And T.U32 (B.reg (pick !u32s 1)) (B.imm 2047) in
      let bytes = B.mul b T.U32 (B.reg idx) (B.imm 4) in
      let o64 = B.cvt b T.U64 T.U32 (B.reg bytes) in
      B.add b T.U64 (B.reg sbase) (B.reg o64)
    in
    B.st b T.Shared T.U32 (B.reg wild_addr) 0 (B.reg (pick !u32s 0))
  end;
  let third = max 1 (Array.length plan.ops / 3) in
  Array.iteri (fun i c -> if i < third then apply_op c) plan.ops;
  (* optional counted loop accumulating into a fixed register *)
  if plan.loop then begin
    let acc = B.mov b T.F32 (B.fimm 0.25) in
    B.for_loop b ~from:(B.imm 0) ~below:(B.imm 4) ~step:1 (fun i ->
      let fi = B.cvt b T.F32 T.U32 (B.reg i) in
      let x = B.mad b T.F32 (B.reg fi) (B.reg (pick !f32s 1)) (B.fimm 0.125) in
      B.acc_binop b I.Add T.F32 acc (B.reg x));
    f32s := acc :: !f32s
  end;
  Array.iteri (fun i c -> if i >= third && i < 2 * third then apply_op c) plan.ops;
  (* optional divergent region: odd threads do extra work *)
  if plan.branch then begin
    let bit = B.binop b I.And T.U32 (B.reg tid) (B.imm 1) in
    let p = B.setp b I.Eq T.U32 (B.reg bit) (B.imm 1) in
    let acc = B.mov b T.F32 (B.fimm 0.0) in
    let skip = B.fresh_label b "Lq" in
    B.bra_ifnot b p skip;
    let e = B.add b T.F32 (B.reg (pick !f32s 0)) (B.fimm 64.0) in
    B.acc_binop b I.Add T.F32 acc (B.reg e);
    B.label b skip;
    f32s := acc :: !f32s
  end;
  Array.iteri (fun i c -> if i >= 2 * third then apply_op c) plan.ops;
  (* fold the three most recent f32 values and store to out[tid] *)
  let result =
    match !f32s with
    | a :: b' :: c :: _ ->
      let t = B.add b T.F32 (B.reg a) (B.reg b') in
      B.add b T.F32 (B.reg t) (B.reg c)
    | a :: b' :: _ -> B.add b T.F32 (B.reg a) (B.reg b')
    | a :: _ -> a
    | [] -> B.mov b T.F32 (B.fimm 0.0)
  in
  let bytes = B.mul b T.U32 (B.reg tid) (B.imm 4) in
  let o64 = B.cvt b T.U64 T.U32 (B.reg bytes) in
  let addr = B.add b T.U64 (B.reg out64) (B.reg o64) in
  B.st b T.Global T.F32 (B.reg addr) 0 (B.reg result);
  B.finish b

let kernel ?(max_ops = 40) ?(with_loop = true) ?(with_branch = true)
    ?(with_shared = false) () =
  let open QCheck.Gen in
  int_range 3 max_ops >>= fun len ->
  array_size (return len) (int_bound 100_000) >>= fun ops ->
  (if with_loop then bool else return false) >>= fun loop ->
  (if with_branch then bool else return false) >>= fun branch ->
  (if with_shared then bool else return false) >>= fun shared ->
  return (build_from_plan { ops; loop; branch; shared })

let arbitrary_kernel =
  QCheck.make ~print:Ptx.Printer.kernel_to_string (kernel ())

let run_emulated ?(block_size = 64) ?(num_blocks = 2) k =
  let mem = Gpusim.Memory.create () in
  Gpusim.Memory.write_f32_array mem ~base:0x1000_0000L
    (Workloads.Data.uniform_f32 ~seed:5 1024);
  let launch =
    Gpusim.Launch.make ~kernel:k ~block_size ~num_blocks
      ~params:
        [ ("inp", Gpusim.Value.I 0x1000_0000L)
        ; ("out", Gpusim.Value.I 0x2000_0000L)
        ; ("n", Gpusim.Value.of_int 1024)
        ]
      mem
  in
  Gpusim.Emulator.run launch;
  Gpusim.Memory.read_f32_array mem ~base:0x2000_0000L (block_size * num_blocks)

let outputs_equal a b =
  Array.length a = Array.length b
  && begin
    let ok = ref true in
    Array.iteri
      (fun i x ->
         if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i)))
         then ok := false)
      a;
    !ok
  end
