.PHONY: all build test verify lint sanitize equiv bench bench-smoke bench-perf bench-backend bench-serve serve-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# static-verifier sweep: every workload kernel at every compiler stage,
# plus the seeded known-bad corpus; fails on any error-severity diagnostic
verify:
	dune exec bin/crat_cli.exe -- verify --all --corpus

# static performance advisor over every workload, with each "may"/"must"
# claim cross-checked against the reference interpreter's dynamic counters;
# the P-code report lands in lint-report.txt
lint:
	dune exec bin/crat_cli.exe -- lint --all --validate --out lint-report.txt

# hybrid memory-safety sweep: every workload at pre-opt/post-opt/post-alloc,
# then a sanitized replay of each default launch (static proofs discharge the
# dynamic checks; only the residue pays a bounds test); the S-code +
# discharge-table report lands in sanitize-report.txt
sanitize:
	dune exec bin/crat_cli.exe -- sanitize --all --validate --out sanitize-report.txt

# translation-validation sweep: symbolically prove every workload's three
# transformation edges (optimization, allocation, machine lowering), plus
# the seeded miscompile corpus, each refutation replayed on the reference
# interpreter; the E-code report lands in equiv-report.txt
equiv:
	dune exec bin/crat_cli.exe -- equiv --all --corpus --out equiv-report.txt

bench:
	dune exec bench/main.exe

# cheap smoke check of the parallel evaluation path
bench-smoke:
	dune exec bench/main.exe -- --only fig1 --jobs 2 --fast

# reduced full sweep with a machine-readable report, for tracking
# simulator performance over time (see BENCH_PR2.json for a reference),
# then the fig13-family replay-on/replay-off grid (see BENCH_PR5.json):
# wall-clock at jobs 1 and 4 with bit-identical Stats fingerprints
bench-perf:
	dune exec bench/main.exe -- --fast --json bench-perf.json
	dune exec bench/replaybench.exe -- BENCH_PR5.json

# fig13 per register-file backend + scalarization statistics
bench-backend:
	dune exec bench/backendbench.exe -- BENCH_PR6.json

# daemon + persistent store under N forked clients, full suite, cold vs
# warm store (see BENCH_PR10.json)
bench-serve:
	dune exec bench/servebench.exe -- BENCH_PR10.json

# CI gate for the daemon: 4 concurrent clients over a workload subset,
# cold store then warm restart; fails unless the warm run answers >= 90%
# of points without functional execution and every Stats fingerprint is
# bit-identical across clients and store temperatures
serve-smoke:
	dune exec bench/servebench.exe -- --smoke BENCH_PR10.json

clean:
	dune clean
