.PHONY: all build test bench bench-smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# cheap smoke check of the parallel evaluation path
bench-smoke:
	dune exec bench/main.exe -- --only fig1 --jobs 2 --fast

clean:
	dune clean
